//! The hierarchical span profiler: [`SpanProfiler`], the cloneable
//! [`ProfileHandle`] instrumented code holds, and the RAII [`SpanGuard`].
//!
//! Mirrors the [`crate::probe::ProbeHandle`] design: handles default to
//! inactive, in which case opening a span is a single branch and
//! un-instrumented runs stay bit- and speed-identical. All clones of a
//! handle share one profiler, one simulated-cycle clock, and one access
//! counter, so spans opened by the simulator, a cache model, and the
//! PRINCE layer aggregate into a single tree.
//!
//! Dual clocks: the simulator advances the cycle/access clocks (purely
//! simulated time — deterministic); a harness may additionally inject a
//! wall timer with [`SpanProfiler::set_wall_timer`]. The lint's
//! wall-clock rule restricts that method to harness-class crates (and
//! this defining file), so no model, sim, or obs code can observe wall
//! time.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::span::{Component, SpanTree};

/// A monotonic nanosecond timer injected by a harness; model/sim crates
/// never construct one (lint-enforced).
pub type WallTimer = Box<dyn FnMut() -> u64>;

struct OpenSpan {
    node: usize,
    cycle0: u64,
    access0: u64,
    wall0: u64,
}

/// Aggregates scoped [`Component`] spans into a [`SpanTree`].
///
/// Not used directly by instrumented code — wrap it in a
/// [`ProfileHandle`] via [`ProfileHandle::of`].
#[derive(Default)]
pub struct SpanProfiler {
    tree: SpanTree,
    stack: Vec<OpenSpan>,
    timer: Option<WallTimer>,
}

impl fmt::Debug for SpanProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanProfiler")
            .field("nodes", &self.tree.paths().len())
            .field("open", &self.stack.len())
            .field("wall_timer", &self.timer.is_some())
            .finish()
    }
}

impl SpanProfiler {
    /// A profiler with no wall timer: the resulting tree is fully
    /// deterministic (`wall_nanos` stays 0 on every node).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a wall timer (monotonic nanoseconds). Harness-only: the
    /// lint's `determinism/wall-clock` rule rejects this identifier in
    /// model-, sim-, and obs-class crates outside this file.
    pub fn set_wall_timer(&mut self, timer: WallTimer) {
        self.timer = Some(timer);
    }

    fn now_wall(&mut self) -> u64 {
        match &mut self.timer {
            Some(t) => t(),
            None => 0,
        }
    }

    // In both `enter` and `finish_top` the wall timer is sampled at the
    // outermost possible point, so a span's own bookkeeping (node lookup,
    // stats updates, the guard's handle clone and drop) is charged to the
    // span itself rather than inflating the parent's self time.
    fn enter(&mut self, component: Component, cycle: u64, accesses: u64) {
        let wall0 = self.now_wall();
        self.enter_at(component, cycle, accesses, wall0);
    }

    fn enter_at(&mut self, component: Component, cycle: u64, accesses: u64, wall0: u64) {
        let parent = self.stack.last().map(|o| o.node).unwrap_or(0);
        let node = self.tree.child_of(parent, component.as_str());
        self.stack.push(OpenSpan {
            node,
            cycle0: cycle,
            access0: accesses,
            wall0,
        });
    }

    /// Closes the top span and opens `component` as its sibling, sampling
    /// the wall timer exactly once so the boundary between the two spans
    /// is gap-free. Hot phase-switching loops use this: with ~tens of
    /// nanoseconds per timer read, separate close+open samples would pile
    /// up millions of unattributed slivers in the parent's self time.
    fn switch(&mut self, component: Component, cycle: u64, accesses: u64) {
        let wall = self.now_wall();
        if let Some(open) = self.stack.pop() {
            let stats = &mut self.tree.nodes[open.node].stats;
            stats.count = stats.count.saturating_add(1);
            stats.cycles = stats
                .cycles
                .saturating_add(cycle.saturating_sub(open.cycle0));
            stats.accesses = stats
                .accesses
                .saturating_add(accesses.saturating_sub(open.access0));
            stats.wall_nanos = stats
                .wall_nanos
                .saturating_add(wall.saturating_sub(open.wall0));
        }
        self.enter_at(component, cycle, accesses, wall);
    }

    fn finish_top(&mut self, cycle: u64, accesses: u64) {
        if let Some(open) = self.stack.pop() {
            {
                let stats = &mut self.tree.nodes[open.node].stats;
                stats.count = stats.count.saturating_add(1);
                stats.cycles = stats
                    .cycles
                    .saturating_add(cycle.saturating_sub(open.cycle0));
                stats.accesses = stats
                    .accesses
                    .saturating_add(accesses.saturating_sub(open.access0));
            }
            let wall = self.now_wall();
            let stats = &mut self.tree.nodes[open.node].stats;
            stats.wall_nanos = stats
                .wall_nanos
                .saturating_add(wall.saturating_sub(open.wall0));
        }
    }

    /// The aggregated tree so far. Open spans contribute nothing until
    /// their guards drop, so call this after the run completes.
    pub fn tree(&self) -> SpanTree {
        self.tree.clone()
    }
}

/// A cloneable, optionally-attached reference to a shared
/// [`SpanProfiler`] plus the shared simulated-cycle and access clocks.
///
/// Models and the simulator store one (defaulting to
/// [`ProfileHandle::none`]); the simulator clones the same handle into
/// the LLC and the index layer so all spans land in one tree.
#[derive(Clone, Default)]
pub struct ProfileHandle {
    prof: Option<Rc<RefCell<SpanProfiler>>>,
    cycle: Rc<Cell<u64>>,
    accesses: Rc<Cell<u64>>,
}

impl fmt::Debug for ProfileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfileHandle")
            .field("active", &self.is_active())
            .field("cycle", &self.cycle.get())
            .field("accesses", &self.accesses.get())
            .finish()
    }
}

impl ProfileHandle {
    /// An inactive handle: opening a span is a no-op behind one branch.
    pub fn none() -> Self {
        Self::default()
    }

    /// Wraps `profiler` into an active handle, returning the handle plus
    /// a typed reference for reading the tree after the run.
    pub fn of(profiler: SpanProfiler) -> (Self, Rc<RefCell<SpanProfiler>>) {
        let rc = Rc::new(RefCell::new(profiler));
        let handle = Self {
            prof: Some(rc.clone()),
            cycle: Rc::new(Cell::new(0)),
            accesses: Rc::new(Cell::new(0)),
        };
        (handle, rc)
    }

    /// True when a profiler is attached.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.prof.is_some()
    }

    /// Advances the shared simulated-cycle clock (the simulator drives
    /// this; standalone models may leave it at 0).
    #[inline]
    pub fn set_cycle(&self, cycle: u64) {
        self.cycle.set(cycle);
    }

    /// Current value of the shared cycle clock.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle.get()
    }

    /// Bumps the shared access counter by `n`.
    #[inline]
    pub fn add_accesses(&self, n: u64) {
        self.accesses.set(self.accesses.get().saturating_add(n));
    }

    /// Current value of the shared access counter.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Opens a `component` span, closed when the returned guard drops.
    /// Spans nest by guard scope; on an inactive handle this is one
    /// branch and the guard is inert.
    #[inline]
    pub fn span(&self, component: Component) -> SpanGuard {
        match &self.prof {
            None => SpanGuard { handle: None },
            Some(rc) => {
                rc.borrow_mut()
                    .enter(component, self.cycle.get(), self.accesses.get());
                SpanGuard {
                    handle: Some(self.clone()),
                }
            }
        }
    }

    fn close_top(&self) {
        if let Some(rc) = &self.prof {
            rc.borrow_mut()
                .finish_top(self.cycle.get(), self.accesses.get());
        }
    }

    fn switch_top(&self, component: Component) {
        if let Some(rc) = &self.prof {
            rc.borrow_mut()
                .switch(component, self.cycle.get(), self.accesses.get());
        }
    }
}

/// Closes its span on drop. Obtained from [`ProfileHandle::span`]; hold
/// it in a `let` binding for the scope the span should cover.
#[must_use = "a span guard closes its span when dropped; bind it with `let`"]
#[derive(Debug)]
pub struct SpanGuard {
    handle: Option<ProfileHandle>,
}

impl SpanGuard {
    /// Closes this span and opens `component` as a sibling under the same
    /// parent, consuming the guard and returning one for the new span.
    /// The wall timer is sampled exactly once at the boundary, so no time
    /// falls between the two spans — use this in hot phase-switching
    /// loops (e.g. the simulator's sched↔core dispatch) where separate
    /// close/open samples would accumulate as parent self time.
    #[must_use = "the returned guard closes the successor span when dropped"]
    pub fn transition(mut self, component: Component) -> SpanGuard {
        match self.handle.take() {
            None => SpanGuard { handle: None },
            Some(h) => {
                h.switch_top(component);
                SpanGuard { handle: Some(h) }
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(h) = &self.handle {
            h.close_top();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStats;

    fn stats_of(paths: &[(String, SpanStats)], path: &str) -> SpanStats {
        paths
            .iter()
            .find(|(p, _)| p == path)
            .unwrap_or_else(|| panic!("missing path {path}"))
            .1
    }

    #[test]
    fn inactive_handle_is_inert() {
        let h = ProfileHandle::none();
        assert!(!h.is_active());
        let _g = h.span(Component::Run);
        let _g2 = h.span(Component::Llc);
    }

    #[test]
    fn spans_nest_and_aggregate_cycle_deltas() {
        let (h, rc) = ProfileHandle::of(SpanProfiler::new());
        {
            let _run = h.span(Component::Run);
            for i in 0..3u64 {
                h.set_cycle(i * 10);
                h.add_accesses(1);
                let _core = h.span(Component::Core);
                h.set_cycle(i * 10 + 4);
                let _llc = h.span(Component::Llc);
                h.set_cycle(i * 10 + 7);
            }
            h.set_cycle(100);
        }
        let paths = rc.borrow().tree().paths();
        let run = stats_of(&paths, "run");
        assert_eq!(run.count, 1);
        assert_eq!(run.cycles, 100);
        assert_eq!(run.accesses, 3);
        let core = stats_of(&paths, "run;core");
        assert_eq!(core.count, 3);
        assert_eq!(core.cycles, 7 + 7 + 7);
        let llc = stats_of(&paths, "run;core;llc");
        assert_eq!(llc.count, 3);
        assert_eq!(llc.cycles, 3 + 3 + 3);
        assert_eq!(run.wall_nanos, 0, "no wall timer injected");
    }

    #[test]
    fn clones_share_one_tree_and_clock() {
        let (h, rc) = ProfileHandle::of(SpanProfiler::new());
        let h2 = h.clone();
        {
            let _a = h.span(Component::Run);
            h2.set_cycle(50);
            let _b = h2.span(Component::Dram);
            h.set_cycle(60);
        }
        let paths = rc.borrow().tree().paths();
        assert_eq!(stats_of(&paths, "run;dram").cycles, 10);
        assert_eq!(stats_of(&paths, "run").cycles, 60);
    }

    #[test]
    fn injected_wall_timer_feeds_wall_nanos() {
        let fake = Rc::new(Cell::new(0u64));
        let mut prof = SpanProfiler::new();
        let fake2 = fake.clone();
        prof.set_wall_timer(Box::new(move || fake2.get()));
        let (h, rc) = ProfileHandle::of(prof);
        {
            let _run = h.span(Component::Run);
            fake.set(1_000);
            {
                let _dram = h.span(Component::Dram);
                fake.set(1_600);
            }
            fake.set(2_000);
        }
        let paths = rc.borrow().tree().paths();
        assert_eq!(stats_of(&paths, "run").wall_nanos, 2_000);
        assert_eq!(stats_of(&paths, "run;dram").wall_nanos, 600);
    }

    #[test]
    fn transitions_are_gap_free_siblings() {
        let fake = Rc::new(Cell::new(0u64));
        let mut prof = SpanProfiler::new();
        let fake2 = fake.clone();
        prof.set_wall_timer(Box::new(move || fake2.get()));
        let (h, rc) = ProfileHandle::of(prof);
        {
            let _run = h.span(Component::Run);
            let mut phase = h.span(Component::Sched);
            for round in 1..=3u64 {
                fake.set(round * 100);
                h.set_cycle(round * 10);
                phase = phase.transition(Component::Core);
                fake.set(round * 100 + 40);
                h.set_cycle(round * 10 + 4);
                phase = phase.transition(Component::Sched);
            }
            fake.set(400);
            drop(phase);
            fake.set(1_000);
        }
        let paths = rc.borrow().tree().paths();
        let run = stats_of(&paths, "run");
        let sched = stats_of(&paths, "run;sched");
        let core = stats_of(&paths, "run;core");
        // Siblings under run, not nested, with per-round counts.
        assert_eq!(sched.count, 4, "initial open plus three re-entries");
        assert_eq!(core.count, 3);
        assert_eq!(core.wall_nanos, 3 * 40);
        assert_eq!(core.cycles, 3 * 4);
        // Gap-free: the whole [0, 400] phase region is covered.
        assert_eq!(sched.wall_nanos + core.wall_nanos, 400);
        assert_eq!(run.wall_nanos, 1_000, "run covers the phases plus slack");
        // A transition on an inert guard stays inert.
        let inert = ProfileHandle::none().span(Component::Sched);
        let _still_inert = inert.transition(Component::Core);
    }

    #[test]
    fn reentrant_same_component_spans_stack_as_distinct_paths() {
        let (h, rc) = ProfileHandle::of(SpanProfiler::new());
        {
            let _a = h.span(Component::Llc);
            let _b = h.span(Component::Llc);
        }
        let paths = rc.borrow().tree().paths();
        assert_eq!(stats_of(&paths, "llc").count, 1);
        assert_eq!(stats_of(&paths, "llc;llc").count, 1);
    }
}
