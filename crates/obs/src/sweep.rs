//! Sidecar records for the experiment sweep engine.
//!
//! The `maya-bench` scheduler executes experiments as enumerated job
//! cells; when a metrics directory is active it writes one
//! `sweep_<experiment>.jsonl` sidecar per experiment with a `job` line per
//! cell (wall time, cache hit) and a trailing `sweep` summary line.
//!
//! This module only *formats* those records. Wall times are measured by
//! the harness and passed in as plain seconds: `maya-obs` sits in
//! maya-lint's model-crate scope, where wall-clock reads are banned.

use std::io::{self, Write};

use crate::json::Obj;

/// One executed sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Experiment id (`fig9`, ...).
    pub experiment: String,
    /// Dense job id; the assembly order of the cell's output.
    pub job: u64,
    /// Design label of the cell.
    pub design: String,
    /// Workload label of the cell.
    pub workload: String,
    /// Seed the cell's simulations flow from.
    pub seed: u64,
    /// Wall time the harness measured for the cell, in seconds.
    pub wall_secs: f64,
    /// True if the result cache served the cell without recomputing.
    pub cache_hit: bool,
    /// True if the cell's work panicked (the scheduler contained it).
    pub failed: bool,
}

impl JobRecord {
    /// The single-line JSON form.
    pub fn to_json_line(&self) -> String {
        Obj::new()
            .str("type", "job")
            .str("experiment", &self.experiment)
            .u64("job", self.job)
            .str("design", &self.design)
            .str("workload", &self.workload)
            .u64("seed", self.seed)
            .f64("wall_secs", self.wall_secs)
            .bool("cache_hit", self.cache_hit)
            .bool("failed", self.failed)
            .finish()
    }
}

/// The summary of one executed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Experiment id.
    pub experiment: String,
    /// Total cells.
    pub jobs: u64,
    /// Cells served from the result cache.
    pub cache_hits: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Cells whose work panicked (contained by the scheduler).
    pub failed: u64,
    /// Total wall time of the sweep, in seconds.
    pub wall_secs: f64,
}

impl SweepRecord {
    /// The single-line JSON form (schema-stamped; see
    /// [`crate::SCHEMA_VERSION`]).
    pub fn to_json_line(&self) -> String {
        Obj::new()
            .str("type", "sweep")
            .str("experiment", &self.experiment)
            .u64("jobs", self.jobs)
            .u64("cache_hits", self.cache_hits)
            .u64("workers", self.workers)
            .u64("failed", self.failed)
            .f64("wall_secs", self.wall_secs)
            .u64("schema_version", crate::SCHEMA_VERSION)
            .finish()
    }
}

/// Writes the sweep sidecar stream: every job line, then the summary.
pub fn write_sweep_jsonl<W: Write>(
    w: &mut W,
    jobs: &[JobRecord],
    summary: &SweepRecord,
) -> io::Result<()> {
    for job in jobs {
        writeln!(w, "{}", job.to_json_line())?;
    }
    writeln!(w, "{}", summary.to_json_line())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_serialize_to_flat_json_lines() {
        let job = JobRecord {
            experiment: "fig9".into(),
            job: 3,
            design: "maya".into(),
            workload: "mcf-rate".into(),
            seed: 7,
            wall_secs: 0.25,
            cache_hit: true,
            failed: false,
        };
        let line = job.to_json_line();
        assert!(line.starts_with(r#"{"type":"job","experiment":"fig9","job":3"#));
        assert!(line.contains(r#""cache_hit":true"#));

        let mut buf = Vec::new();
        let summary = SweepRecord {
            experiment: "fig9".into(),
            jobs: 20,
            cache_hits: 13,
            workers: 4,
            failed: 1,
            wall_secs: 1.5,
        };
        write_sweep_jsonl(&mut buf, &[job], &summary).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with(r#"{"type":"sweep""#));
        assert!(lines[1].contains(r#""cache_hits":13"#));
    }
}
