//! Sweep-telemetry report building: merges per-cell metrics sidecar
//! JSONL (and per-experiment sweep sidecars) into one aggregated
//! [`Report`], rendered as markdown, TSV, and inferno-compatible
//! collapsed-stack flamegraph lines.
//!
//! Determinism contract: the primary artifacts (`render_markdown`,
//! `render_tsv`, `render_flame`) contain only deterministic quantities —
//! counts, simulated cycles, accesses — and are byte-identical across
//! reruns and worker counts (CI pins this). Wall-clock quantities (span
//! `wall_nanos`, per-job `wall_secs`) are segregated into the `_wall`
//! artifacts (`render_flame_wall`, `render_wall_markdown`), which vary
//! run to run by nature.
//!
//! This module is pure (no filesystem): the `obs-report` binary reads
//! files and feeds their contents in as [`ReportInput`]s.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{parse_value, Value};
use crate::metrics::Histogram;
use crate::span::SpanStats;
use crate::SCHEMA_VERSION;

/// One input file: its (base)name, for error messages and deterministic
/// ordering, plus its full contents.
#[derive(Debug, Clone)]
pub struct ReportInput {
    /// File name (used in error messages; inputs are processed in sorted
    /// name order by the caller).
    pub name: String,
    /// Full JSONL contents.
    pub text: String,
}

/// Aggregated telemetry for one design across every merged cell.
#[derive(Debug, Clone, Default)]
pub struct DesignAgg {
    /// Metrics files (cells) merged into this design.
    pub cells: u64,
    /// Summed counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Merged histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Merged span stats by `;`-joined path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Summed final-snapshot cycles (one per cell): total simulated time.
    pub sim_cycles: u64,
    /// Summed final-snapshot instruction counts.
    pub instructions: u64,
}

impl DesignAgg {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Demand lookups: data hits + tag-only hits + misses.
    pub fn lookups(&self) -> u64 {
        self.counter("llc.hit.data")
            .saturating_add(self.counter("llc.hit.tag_only"))
            .saturating_add(self.counter("llc.miss"))
    }
}

/// One experiment's sweep rollup (workers and wall time deliberately
/// excluded: the report must not depend on them).
#[derive(Debug, Clone, Default)]
pub struct SweepAgg {
    /// Total cells in the sweep.
    pub jobs: u64,
    /// Cells served by the result cache.
    pub cache_hits: u64,
    /// Cells whose work panicked (contained by the scheduler).
    pub failed: u64,
}

/// One failed cell, for the FailedCell rollup.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailedCell {
    /// Experiment id.
    pub experiment: String,
    /// Dense job id within the experiment.
    pub job: u64,
    /// Design label.
    pub design: String,
    /// Workload label.
    pub workload: String,
}

/// The merged telemetry of one metrics directory.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-design aggregates, keyed by design label.
    pub designs: BTreeMap<String, DesignAgg>,
    /// Per-experiment sweep rollups.
    pub sweeps: BTreeMap<String, SweepAgg>,
    /// Every failed cell, sorted.
    pub failed_cells: Vec<FailedCell>,
}

fn field_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn field_str<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key).and_then(Value::as_str).unwrap_or("")
}

/// Checks a record's `schema_version` against [`SCHEMA_VERSION`].
/// `required` records (run headers, sweep summaries, bench records) must
/// carry a stamp; a missing stamp or a newer version is an error.
fn check_schema(v: &Value, file: &str, line_no: usize, required: bool) -> Result<(), String> {
    match v.get("schema_version").and_then(Value::as_u64) {
        Some(found) if found <= SCHEMA_VERSION => Ok(()),
        Some(found) => Err(format!(
            "{file}:{line_no}: schema_version {found} is newer than this \
             obs-report understands ({SCHEMA_VERSION}); rebuild obs-report from the \
             matching tree"
        )),
        None if required => Err(format!(
            "{file}:{line_no}: record has no schema_version (pre-versioning \
             output?); regenerate it with the current tree"
        )),
        None => Ok(()),
    }
}

fn absorb_metrics_file(report: &mut Report, input: &ReportInput) -> Result<(), String> {
    let mut design = String::new();
    let mut last_snapshot: Option<Value> = None;
    let mut body_lines = 0u64;
    let mut end_seen = false;
    // Staged into a scratch aggregate first so a malformed file cannot
    // half-merge.
    let mut agg = DesignAgg::default();
    for (i, line) in input.text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_value(line).map_err(|e| format!("{}:{line_no}: {e}", input.name))?;
        match field_str(&v, "type") {
            "run" => {
                check_schema(&v, &input.name, line_no, true)?;
                design = field_str(&v, "design").to_string();
                if design.is_empty() {
                    return Err(format!(
                        "{}:{line_no}: run header has no design",
                        input.name
                    ));
                }
            }
            "snapshot" => {
                last_snapshot = Some(v);
                body_lines = body_lines.saturating_add(1);
            }
            "counter" => {
                let name = field_str(&v, "name").to_string();
                let add = field_u64(&v, "value");
                let c = agg.counters.entry(name).or_insert(0);
                *c = c.saturating_add(add);
                body_lines = body_lines.saturating_add(1);
            }
            "histogram" => {
                let name = field_str(&v, "name").to_string();
                let triples: Vec<(u64, u64, u64)> = v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .filter_map(|t| {
                                let t = t.as_arr()?;
                                Some((
                                    t.first()?.as_u64()?,
                                    t.get(1)?.as_u64()?,
                                    t.get(2)?.as_u64()?,
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let h = Histogram::from_buckets(
                    triples,
                    field_u64(&v, "sum"),
                    v.get("min").and_then(Value::as_u64),
                    v.get("max").and_then(Value::as_u64),
                );
                agg.histograms.entry(name).or_default().merge(&h);
                body_lines = body_lines.saturating_add(1);
            }
            "span" => {
                let path = field_str(&v, "path").to_string();
                let s = agg.spans.entry(path).or_default();
                s.absorb(&SpanStats {
                    count: field_u64(&v, "count"),
                    cycles: field_u64(&v, "cycles"),
                    accesses: field_u64(&v, "accesses"),
                    wall_nanos: field_u64(&v, "wall_nanos"),
                });
                body_lines = body_lines.saturating_add(1);
            }
            "end" => {
                let declared = field_u64(&v, "snapshots")
                    .saturating_add(field_u64(&v, "counters"))
                    .saturating_add(field_u64(&v, "histograms"))
                    .saturating_add(field_u64(&v, "spans"));
                if declared != body_lines {
                    return Err(format!(
                        "{}:{line_no}: end record declares {declared} body lines, \
                         found {body_lines} (truncated file?)",
                        input.name
                    ));
                }
                end_seen = true;
            }
            other => {
                return Err(format!(
                    "{}:{line_no}: unknown record type {other:?}",
                    input.name
                ))
            }
        }
    }
    if design.is_empty() {
        return Err(format!("{}: no run header found", input.name));
    }
    if !end_seen {
        return Err(format!(
            "{}: missing end record (truncated file?)",
            input.name
        ));
    }
    if let Some(snap) = &last_snapshot {
        agg.sim_cycles = field_u64(snap, "cycle");
        agg.instructions = field_u64(snap, "instructions");
    }
    agg.cells = 1;
    let into = report.designs.entry(design).or_default();
    into.cells = into.cells.saturating_add(agg.cells);
    into.sim_cycles = into.sim_cycles.saturating_add(agg.sim_cycles);
    into.instructions = into.instructions.saturating_add(agg.instructions);
    for (name, n) in agg.counters {
        let c = into.counters.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    }
    for (name, h) in agg.histograms {
        into.histograms.entry(name).or_default().merge(&h);
    }
    for (path, s) in agg.spans {
        into.spans.entry(path).or_default().absorb(&s);
    }
    Ok(())
}

fn absorb_sweep_file(report: &mut Report, input: &ReportInput) -> Result<(), String> {
    for (i, line) in input.text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let v = parse_value(line).map_err(|e| format!("{}:{line_no}: {e}", input.name))?;
        match field_str(&v, "type") {
            "job" => {
                if v.get("failed") == Some(&Value::Bool(true)) {
                    report.failed_cells.push(FailedCell {
                        experiment: field_str(&v, "experiment").to_string(),
                        job: field_u64(&v, "job"),
                        design: field_str(&v, "design").to_string(),
                        workload: field_str(&v, "workload").to_string(),
                    });
                }
            }
            "sweep" => {
                check_schema(&v, &input.name, line_no, true)?;
                let exp = field_str(&v, "experiment").to_string();
                let agg = report.sweeps.entry(exp).or_default();
                agg.jobs = agg.jobs.saturating_add(field_u64(&v, "jobs"));
                agg.cache_hits = agg.cache_hits.saturating_add(field_u64(&v, "cache_hits"));
                agg.failed = agg.failed.saturating_add(field_u64(&v, "failed"));
            }
            other => {
                return Err(format!(
                    "{}:{line_no}: unknown sweep record type {other:?}",
                    input.name
                ))
            }
        }
    }
    Ok(())
}

/// Builds the merged report. `metrics` are per-cell `metrics_*.jsonl`
/// contents; `sweeps` are `sweep_*.jsonl` contents. The caller passes
/// inputs in sorted name order; merging is order-insensitive anyway
/// (every aggregate is associative and commutative).
pub fn build_report(metrics: &[ReportInput], sweeps: &[ReportInput]) -> Result<Report, String> {
    let mut report = Report::default();
    for input in metrics {
        absorb_metrics_file(&mut report, input)?;
    }
    for input in sweeps {
        absorb_sweep_file(&mut report, input)?;
    }
    report.failed_cells.sort();
    report.failed_cells.dedup();
    Ok(report)
}

/// Validates the schema stamps of a BENCH JSONL file (`BENCH_perf.json`,
/// `BENCH_diag.json`, `BENCH_history.jsonl`): every line must parse, and
/// `perf` / `diag` / `perf-history` / `run` records must be
/// schema-stamped with a version this tool understands. Returns the
/// number of stamped records checked.
pub fn validate_bench_text(name: &str, text: &str) -> Result<u64, String> {
    let mut checked = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_value(line).map_err(|e| format!("{name}:{line_no}: {e}"))?;
        let ty = field_str(&v, "type");
        if matches!(ty, "perf" | "diag" | "perf-history" | "run") {
            check_schema(&v, name, line_no, true)?;
            checked = checked.saturating_add(1);
        }
    }
    Ok(checked)
}

/// `;`-split depth of a span path.
fn depth_of(path: &str) -> usize {
    path.split(';').count()
}

/// Self value of `path` under `pick`: its total minus its direct
/// children's totals (clamped at 0).
fn self_value(
    spans: &BTreeMap<String, SpanStats>,
    path: &str,
    pick: &impl Fn(&SpanStats) -> u64,
) -> u64 {
    let total = spans.get(path).map(pick).unwrap_or(0);
    let prefix = format!("{path};");
    let child_depth = depth_of(path) + 1;
    let child_sum = spans
        .iter()
        .filter(|(p, _)| p.starts_with(&prefix) && depth_of(p) == child_depth)
        .fold(0u64, |acc, (_, s)| acc.saturating_add(pick(s)));
    total.saturating_sub(child_sum)
}

impl Report {
    /// Fraction of the top-level `run` span's wall time attributed to
    /// named child components for `design`:
    /// `1 - self_wall(run) / total_wall(run)`. `None` when the design
    /// has no wall-timed `run` span.
    pub fn attribution(&self, design: &str) -> Option<f64> {
        let agg = self.designs.get(design)?;
        let total = agg.spans.get("run")?.wall_nanos;
        if total == 0 {
            return None;
        }
        let own = self_value(&agg.spans, "run", &|s: &SpanStats| s.wall_nanos);
        Some(1.0 - own as f64 / total as f64)
    }

    /// Inferno-compatible collapsed-stack lines, deterministically
    /// valued by span *count* (self counts), paths prefixed with the
    /// design label: `maya;run;core;llc 123`.
    pub fn render_flame(&self) -> String {
        self.flame_by(&|s: &SpanStats| s.count)
    }

    /// Collapsed-stack lines valued by self wall nanoseconds. Not
    /// byte-stable across runs — kept out of the deterministic artifact
    /// set.
    pub fn render_flame_wall(&self) -> String {
        self.flame_by(&|s: &SpanStats| s.wall_nanos)
    }

    fn flame_by(&self, pick: &impl Fn(&SpanStats) -> u64) -> String {
        let mut out = String::new();
        for (design, agg) in &self.designs {
            for path in agg.spans.keys() {
                let own = self_value(&agg.spans, path, pick);
                let _ = writeln!(out, "{design};{path} {own}");
            }
        }
        out
    }

    /// The deterministic markdown report: sweep rollups, per-design
    /// throughput, demand-load latency percentiles, and the top-`top`
    /// hot components by span count.
    pub fn render_markdown(&self, top: usize) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "# Sweep telemetry report");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Schema version {SCHEMA_VERSION}. {} metrics cell(s), {} design(s), {} sweep(s).",
            self.designs
                .values()
                .fold(0u64, |a, d| a.saturating_add(d.cells)),
            self.designs.len(),
            self.sweeps.len(),
        );
        if !self.sweeps.is_empty() {
            let _ = writeln!(md);
            let _ = writeln!(md, "## Sweeps");
            let _ = writeln!(md);
            let _ = writeln!(md, "| experiment | jobs | cache hits | failed |");
            let _ = writeln!(md, "|---|---:|---:|---:|");
            for (exp, s) in &self.sweeps {
                let _ = writeln!(
                    md,
                    "| {exp} | {} | {} | {} |",
                    s.jobs, s.cache_hits, s.failed
                );
            }
        }
        if !self.failed_cells.is_empty() {
            let _ = writeln!(md);
            let _ = writeln!(md, "### Failed cells");
            let _ = writeln!(md);
            for f in &self.failed_cells {
                let _ = writeln!(
                    md,
                    "- `{}` job {} ({} / {})",
                    f.experiment, f.job, f.design, f.workload
                );
            }
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "## Designs");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "| design | cells | lookups | data hits | tag-only hits | misses | fills | sim cycles | lookups/kcycle | hit rate |"
        );
        let _ = writeln!(md, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
        for (design, agg) in &self.designs {
            let lookups = agg.lookups();
            let hits = agg.counter("llc.hit.data");
            let per_kcycle = if agg.sim_cycles > 0 {
                format!("{:.3}", lookups as f64 * 1000.0 / agg.sim_cycles as f64)
            } else {
                "-".to_string()
            };
            let hit_rate = if lookups > 0 {
                format!("{:.4}", hits as f64 / lookups as f64)
            } else {
                "-".to_string()
            };
            let fills = agg
                .counter("llc.fill.data")
                .saturating_add(agg.counter("llc.fill.tag_only"));
            let _ = writeln!(
                md,
                "| {design} | {} | {lookups} | {hits} | {} | {} | {fills} | {} | {per_kcycle} | {hit_rate} |",
                agg.cells,
                agg.counter("llc.hit.tag_only"),
                agg.counter("llc.miss"),
                agg.sim_cycles,
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "## Demand-load latency (simulated cycles)");
        let _ = writeln!(md);
        let _ = writeln!(md, "| design | loads | p50 | p90 | p99 | mean | max |");
        let _ = writeln!(md, "|---|---:|---:|---:|---:|---:|---:|");
        for (design, agg) in &self.designs {
            match agg.histograms.get("core.load_latency") {
                Some(h) if h.count() > 0 => {
                    let pct = |p| h.percentile(p).map_or("-".to_string(), |v| v.to_string());
                    let _ = writeln!(
                        md,
                        "| {design} | {} | {} | {} | {} | {:.1} | {} |",
                        h.count(),
                        pct(50),
                        pct(90),
                        pct(99),
                        h.mean().unwrap_or(0.0),
                        h.max().map_or("-".to_string(), |v| v.to_string()),
                    );
                }
                _ => {
                    let _ = writeln!(md, "| {design} | 0 | - | - | - | - | - |");
                }
            }
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "## Hot components (by span count)");
        let _ = writeln!(md);
        let hot = self.hot_components(top, &|s: &SpanStats| s.count);
        if hot.is_empty() {
            let _ = writeln!(md, "No span records in the input (runs were not profiled).");
        } else {
            let _ = writeln!(md, "| design | path | self count | cycles | accesses |");
            let _ = writeln!(md, "|---|---|---:|---:|---:|");
            for (design, path, own, s) in hot {
                let _ = writeln!(
                    md,
                    "| {design} | `{path}` | {own} | {} | {} |",
                    s.cycles, s.accesses
                );
            }
        }
        md
    }

    /// Wall-time hot-component table (non-deterministic companion to
    /// [`Report::render_markdown`]), plus per-design attribution.
    pub fn render_wall_markdown(&self, top: usize) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "# Wall-time hot components");
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "Wall times vary run to run; this file is excluded from byte-identity checks."
        );
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "| design | path | self wall (ms) | total wall (ms) | count |"
        );
        let _ = writeln!(md, "|---|---|---:|---:|---:|");
        for (design, path, own, s) in self.hot_components(top, &|s: &SpanStats| s.wall_nanos) {
            let _ = writeln!(
                md,
                "| {design} | `{path}` | {:.3} | {:.3} | {} |",
                own as f64 / 1e6,
                s.wall_nanos as f64 / 1e6,
                s.count
            );
        }
        for design in self.designs.keys() {
            if let Some(frac) = self.attribution(design) {
                let _ = writeln!(md);
                let _ = writeln!(
                    md,
                    "Attribution ({design}): {:.1}% of `run` wall time is covered by child spans.",
                    frac * 100.0
                );
            }
        }
        md
    }

    /// Top `top` spans across all designs ranked by self `pick` value
    /// (descending), ties broken by design then path.
    fn hot_components(
        &self,
        top: usize,
        pick: &impl Fn(&SpanStats) -> u64,
    ) -> Vec<(String, String, u64, SpanStats)> {
        let mut rows: Vec<(String, String, u64, SpanStats)> = Vec::new();
        for (design, agg) in &self.designs {
            for (path, s) in &agg.spans {
                let own = self_value(&agg.spans, path, pick);
                rows.push((design.clone(), path.clone(), own, *s));
            }
        }
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (&a.0, &a.1).cmp(&(&b.0, &b.1))));
        rows.truncate(top);
        rows
    }

    /// The deterministic flat TSV dump: every counter, histogram (with
    /// percentiles), span, and sweep rollup. Wall quantities excluded.
    pub fn render_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "kind\tdesign\tname\tv1\tv2\tv3\tv4\tv5");
        for (exp, s) in &self.sweeps {
            let _ = writeln!(
                out,
                "sweep\t\t{exp}\t{}\t{}\t{}\t\t",
                s.jobs, s.cache_hits, s.failed
            );
        }
        for f in &self.failed_cells {
            let _ = writeln!(
                out,
                "failed_cell\t{}\t{}\t{}\t{}\t\t\t",
                f.design, f.experiment, f.job, f.workload
            );
        }
        for (design, agg) in &self.designs {
            let _ = writeln!(out, "cells\t{design}\t\t{}\t\t\t\t", agg.cells);
            let _ = writeln!(out, "sim_cycles\t{design}\t\t{}\t\t\t\t", agg.sim_cycles);
            for (name, v) in &agg.counters {
                let _ = writeln!(out, "counter\t{design}\t{name}\t{v}\t\t\t\t");
            }
            for (name, h) in &agg.histograms {
                let fmt_p = |p| {
                    h.percentile(p)
                        .map_or(String::new(), |v: u64| v.to_string())
                };
                let _ = writeln!(
                    out,
                    "histogram\t{design}\t{name}\t{}\t{}\t{}\t{}\t{}",
                    h.count(),
                    h.sum(),
                    fmt_p(50),
                    fmt_p(90),
                    fmt_p(99),
                );
            }
            for (path, s) in &agg.spans {
                let _ = writeln!(
                    out,
                    "span\t{design}\t{path}\t{}\t{}\t{}\t\t",
                    s.count, s.cycles, s.accesses
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_file(design: &str, latency_samples: &[u64]) -> ReportInput {
        use crate::collector::MetricsProbe;
        use crate::event::{Event, EventKind};
        use crate::probe::Probe;
        use crate::profile::{ProfileHandle, SpanProfiler};
        use crate::sink::{run_header, write_jsonl_with_spans};
        use crate::span::Component;

        let mut p = MetricsProbe::new(100);
        for (i, &lat) in latency_samples.iter().enumerate() {
            let c = (i as u64 + 1) * 10;
            p.record(&Event {
                cycle: c,
                kind: EventKind::Miss { line: i as u64 },
            });
            p.record(&Event {
                cycle: c,
                kind: EventKind::Fill {
                    line: i as u64,
                    tag_only: false,
                    skew: 0,
                },
            });
            p.record(&Event {
                cycle: c + 1,
                kind: EventKind::Hit { line: i as u64 },
            });
            p.record(&Event {
                cycle: c + 2,
                kind: EventKind::LoadComplete { latency: lat },
            });
        }
        p.finalize(latency_samples.len() as u64 * 10 + 5);

        let (h, rc) = ProfileHandle::of(SpanProfiler::new());
        {
            let _run = h.span(Component::Run);
            for i in 0..latency_samples.len() as u64 {
                h.set_cycle(i * 10);
                h.add_accesses(1);
                let _core = h.span(Component::Core);
                let _llc = h.span(Component::Llc);
            }
            h.set_cycle(latency_samples.len() as u64 * 10 + 5);
        }
        let tree = rc.borrow().tree();
        let mut buf = Vec::new();
        write_jsonl_with_spans(&mut buf, run_header(design, "mix", 7, 100), &p, Some(&tree))
            .unwrap();
        ReportInput {
            name: format!("metrics_{design}.jsonl"),
            text: String::from_utf8(buf).unwrap(),
        }
    }

    fn sweep_file() -> ReportInput {
        use crate::sweep::{JobRecord, SweepRecord};
        let mut text = String::new();
        for (job, failed) in [(0u64, false), (1, true)] {
            text.push_str(
                &JobRecord {
                    experiment: "llcfit".into(),
                    job,
                    design: "maya".into(),
                    workload: "leela".into(),
                    seed: 7,
                    wall_secs: 0.5 + job as f64,
                    cache_hit: job == 0,
                    failed,
                }
                .to_json_line(),
            );
            text.push('\n');
        }
        text.push_str(
            &SweepRecord {
                experiment: "llcfit".into(),
                jobs: 2,
                cache_hits: 1,
                workers: 4,
                failed: 1,
                wall_secs: 2.5,
            }
            .to_json_line(),
        );
        text.push('\n');
        ReportInput {
            name: "sweep_llcfit.jsonl".into(),
            text,
        }
    }

    #[test]
    fn merges_cells_and_renders_deterministic_artifacts() {
        let m1 = metrics_file("maya", &[40, 40, 200]);
        let m2 = metrics_file("maya", &[40, 500]);
        let m3 = metrics_file("baseline", &[30]);
        let report = build_report(&[m1.clone(), m2.clone(), m3.clone()], &[sweep_file()]).unwrap();

        let maya = &report.designs["maya"];
        assert_eq!(maya.cells, 2);
        assert_eq!(maya.lookups(), 10); // 5 hits + 5 misses
        assert_eq!(maya.histograms["core.load_latency"].count(), 5);
        assert_eq!(maya.spans["run"].count, 2);
        assert_eq!(maya.spans["run;core;llc"].count, 5);
        assert_eq!(report.sweeps["llcfit"].cache_hits, 1);
        assert_eq!(report.failed_cells.len(), 1);

        // Merge order must not matter.
        let swapped = build_report(&[m3, m2, m1], &[sweep_file()]).unwrap();
        assert_eq!(report.render_markdown(10), swapped.render_markdown(10));
        assert_eq!(report.render_tsv(), swapped.render_tsv());
        assert_eq!(report.render_flame(), swapped.render_flame());

        let md = report.render_markdown(10);
        assert!(md.contains("| llcfit | 2 | 1 | 1 |"), "{md}");
        assert!(md.contains("`llcfit` job 1"), "{md}");
        assert!(md.contains("| maya |"), "{md}");
        let flame = report.render_flame();
        assert!(flame.contains("maya;run;core;llc 5\n"), "{flame}");
        assert!(flame.contains("baseline;run;core 0\n"), "{flame}");
        let tsv = report.render_tsv();
        assert!(tsv.contains("counter\tmaya\tllc.miss\t5"), "{tsv}");
        assert!(tsv.contains("span\tbaseline\trun;core;llc\t1"), "{tsv}");
        assert!(!tsv.contains("wall"), "wall data must stay out of the TSV");
    }

    #[test]
    fn latency_percentiles_survive_serialization_and_merge() {
        let report = build_report(
            &[
                metrics_file("maya", &[40, 40, 40, 40, 40, 40, 40, 40, 40]),
                metrics_file("maya", &[3000]),
            ],
            &[],
        )
        .unwrap();
        let h = &report.designs["maya"].histograms["core.load_latency"];
        assert_eq!(h.count(), 10);
        assert_eq!(h.percentile(50), Some(63), "bucket [32,64) upper bound - 1");
        assert_eq!(h.percentile(99), Some(3000), "clamped to exact max");
    }

    #[test]
    fn schema_mismatches_are_rejected_with_context() {
        let good = metrics_file("maya", &[40]);
        let stale = ReportInput {
            name: "metrics_old.jsonl".into(),
            text: good.text.replace(
                &format!(r#""schema_version":{SCHEMA_VERSION}"#),
                r#""schema_version":99"#,
            ),
        };
        let err = build_report(&[stale], &[]).unwrap_err();
        assert!(err.contains("metrics_old.jsonl:1"), "{err}");
        assert!(err.contains("schema_version 99"), "{err}");

        let unstamped = ReportInput {
            name: "metrics_pre.jsonl".into(),
            text: good
                .text
                .replace(&format!(r#","schema_version":{SCHEMA_VERSION}"#), ""),
        };
        let err = build_report(&[unstamped], &[]).unwrap_err();
        assert!(err.contains("no schema_version"), "{err}");
    }

    #[test]
    fn truncated_files_are_rejected() {
        let good = metrics_file("maya", &[40]);
        let cut: String = good
            .text
            .lines()
            .filter(|l| !l.contains(r#""type":"end""#))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = build_report(
            &[ReportInput {
                name: "metrics_cut.jsonl".into(),
                text: cut,
            }],
            &[],
        )
        .unwrap_err();
        assert!(err.contains("missing end record"), "{err}");

        let dropped: String = good
            .text
            .lines()
            .filter(|l| !l.contains(r#""type":"counter","name":"llc.miss""#))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = build_report(
            &[ReportInput {
                name: "metrics_drop.jsonl".into(),
                text: dropped,
            }],
            &[],
        )
        .unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn attribution_uses_wall_self_share() {
        let mut report = Report::default();
        let mut agg = DesignAgg::default();
        agg.spans.insert(
            "run".into(),
            SpanStats {
                count: 1,
                cycles: 0,
                accesses: 0,
                wall_nanos: 1000,
            },
        );
        agg.spans.insert(
            "run;core".into(),
            SpanStats {
                count: 5,
                cycles: 0,
                accesses: 0,
                wall_nanos: 930,
            },
        );
        agg.spans.insert(
            "run;core;llc".into(),
            SpanStats {
                count: 5,
                cycles: 0,
                accesses: 0,
                wall_nanos: 400,
            },
        );
        report.designs.insert("maya".into(), agg);
        let frac = report.attribution("maya").unwrap();
        assert!((frac - 0.93).abs() < 1e-9, "{frac}");
        assert_eq!(report.attribution("missing"), None);
        let wall_md = report.render_wall_markdown(5);
        assert!(wall_md.contains("93.0%"), "{wall_md}");
    }

    #[test]
    fn bench_text_validation_checks_stamps() {
        let ok = format!(
            "{}\n{}\n",
            crate::json::Obj::new()
                .str("type", "perf")
                .u64("schema_version", SCHEMA_VERSION)
                .finish(),
            crate::json::Obj::new().str("type", "sweep-total").finish(),
        );
        assert_eq!(validate_bench_text("BENCH_perf.json", &ok), Ok(1));
        let bad = r#"{"type":"diag","ipc":1.0}"#;
        let err = validate_bench_text("BENCH_diag.json", bad).unwrap_err();
        assert!(err.contains("no schema_version"), "{err}");
    }
}
