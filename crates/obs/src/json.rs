//! A hand-rolled, dependency-free JSON object builder.
//!
//! Only what the sinks need: flat objects of strings, integers, floats,
//! booleans, and pre-serialized raw values (for arrays), emitted in
//! insertion order on a single line.

/// Escapes `s` for inclusion in a JSON string literal (quotes excluded).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An in-order, single-line JSON object under construction.
#[derive(Debug, Clone, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` for non-finite values, which JSON cannot
    /// represent).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            // `{}` on f64 always prints a valid JSON number.
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (use for arrays).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finishes the object as one JSON line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes an iterator of `u64` as a JSON array.
pub fn array_u64(values: impl IntoIterator<Item = u64>) -> String {
    let mut buf = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&v.to_string());
    }
    buf.push(']');
    buf
}

/// Serializes `(lo, hi, count)` bucket triples as a JSON array of arrays.
pub fn array_buckets(buckets: impl IntoIterator<Item = (u64, u64, u64)>) -> String {
    let mut buf = String::from("[");
    for (i, (lo, hi, n)) in buckets.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!("[{lo},{hi},{n}]"));
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_flat_objects_in_order() {
        let line = Obj::new()
            .str("type", "snapshot")
            .u64("cycle", 42)
            .f64("mpki", 1.5)
            .bool("ok", true)
            .raw("xs", &array_u64([1, 2, 3]))
            .finish();
        assert_eq!(
            line,
            r#"{"type":"snapshot","cycle":42,"mpki":1.5,"ok":true,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Obj::new().f64("x", f64::NAN).finish(), r#"{"x":null}"#);
        assert_eq!(Obj::new().f64("x", f64::INFINITY).finish(), r#"{"x":null}"#);
    }

    #[test]
    fn bucket_arrays_nest() {
        assert_eq!(array_buckets([(0, 1, 3), (4, 8, 2)]), "[[0,1,3],[4,8,2]]");
        assert_eq!(array_buckets([]), "[]");
    }

    #[test]
    fn whole_floats_print_as_numbers() {
        assert_eq!(Obj::new().f64("x", 5.0).finish(), r#"{"x":5}"#);
    }
}
