//! A hand-rolled, dependency-free JSON object builder and line parser.
//!
//! The builder emits only what the sinks need: flat objects of strings,
//! integers, floats, booleans, and pre-serialized raw values (for
//! arrays), in insertion order on a single line. The parser
//! ([`parse_value`]) reads those lines back for `obs-report` and the
//! perf-history tooling — full JSON (nested arrays/objects), with
//! integers kept exact as `u64` where possible.

use std::collections::BTreeMap;

/// Escapes `s` for inclusion in a JSON string literal (quotes excluded).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An in-order, single-line JSON object under construction.
#[derive(Debug, Clone, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` for non-finite values, which JSON cannot
    /// represent).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            // `{}` on f64 always prints a valid JSON number.
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (use for arrays).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finishes the object as one JSON line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes an iterator of `u64` as a JSON array.
pub fn array_u64(values: impl IntoIterator<Item = u64>) -> String {
    let mut buf = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&v.to_string());
    }
    buf.push(']');
    buf
}

/// Serializes `(lo, hi, count)` bucket triples as a JSON array of arrays.
pub fn array_buckets(buckets: impl IntoIterator<Item = (u64, u64, u64)>) -> String {
    let mut buf = String::from("[");
    for (i, (lo, hi, n)) in buckets.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&format!("[{lo},{hi},{n}]"));
    }
    buf.push(']');
    buf
}

/// A parsed JSON value. Integers that fit `u64` stay exact ([`Value::U64`]);
/// everything else numeric becomes [`Value::F64`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    U64(u64),
    /// Any other number (negative, fractional, or exponent-form).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalized to `BTreeMap` order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (exact `u64`, or an integral non-negative
    /// float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `f64` (lossy above 2^53 for `U64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Field `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value entries, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `s` (surrounding whitespace
/// allowed, trailing garbage rejected). Errors carry a byte offset.
pub fn parse_value(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos = pos.saturating_add(1);
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == want {
        *pos = pos.saturating_add(1);
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(want), *pos))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(format!("unexpected end of input at byte {}", *pos));
    };
    match c {
        b'{' => {
            *pos = pos.saturating_add(1);
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos = pos.saturating_add(1);
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let Value::Str(key) = parse_at(b, pos)? else {
                    return Err(format!("object key is not a string at byte {}", *pos));
                };
                skip_ws(b, pos);
                expect_byte(b, pos, b':')?;
                let val = parse_at(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos = pos.saturating_add(1),
                    Some(&b'}') => {
                        *pos = pos.saturating_add(1);
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos = pos.saturating_add(1);
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos = pos.saturating_add(1);
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos = pos.saturating_add(1),
                    Some(&b']') => {
                        *pos = pos.saturating_add(1);
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'"' => parse_string(b, pos).map(Value::Str),
        b't' if b[*pos..].starts_with(b"true") => {
            *pos = pos.saturating_add(4);
            Ok(Value::Bool(true))
        }
        b'f' if b[*pos..].starts_with(b"false") => {
            *pos = pos.saturating_add(5);
            Ok(Value::Bool(false))
        }
        b'n' if b[*pos..].starts_with(b"null") => {
            *pos = pos.saturating_add(4);
            Ok(Value::Null)
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(format!(
            "unexpected byte '{}' at byte {}",
            char::from(other),
            *pos
        )),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(format!("unterminated string at byte {}", *pos));
        };
        *pos = pos.saturating_add(1);
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(format!("dangling escape at byte {}", *pos));
                };
                *pos = pos.saturating_add(1);
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos = pos.saturating_add(4);
                        // Surrogates (emitted only for exotic input we never
                        // produce) decode to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "unknown escape '\\{}' at byte {}",
                            char::from(other),
                            *pos
                        ))
                    }
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the whole sequence through.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end = end.saturating_add(1);
                }
                let chunk = std::str::from_utf8(&b[start..end])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos = pos.saturating_add(1);
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos = pos.saturating_add(1);
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Value::U64(n));
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_flat_objects_in_order() {
        let line = Obj::new()
            .str("type", "snapshot")
            .u64("cycle", 42)
            .f64("mpki", 1.5)
            .bool("ok", true)
            .raw("xs", &array_u64([1, 2, 3]))
            .finish();
        assert_eq!(
            line,
            r#"{"type":"snapshot","cycle":42,"mpki":1.5,"ok":true,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Obj::new().f64("x", f64::NAN).finish(), r#"{"x":null}"#);
        assert_eq!(Obj::new().f64("x", f64::INFINITY).finish(), r#"{"x":null}"#);
    }

    #[test]
    fn bucket_arrays_nest() {
        assert_eq!(array_buckets([(0, 1, 3), (4, 8, 2)]), "[[0,1,3],[4,8,2]]");
        assert_eq!(array_buckets([]), "[]");
    }

    #[test]
    fn whole_floats_print_as_numbers() {
        assert_eq!(Obj::new().f64("x", 5.0).finish(), r#"{"x":5}"#);
    }

    #[test]
    fn parser_round_trips_builder_output() {
        let line = Obj::new()
            .str("type", "run")
            .u64("cycle", u64::MAX)
            .f64("mpki", -1.5)
            .bool("ok", true)
            .raw("xs", &array_buckets([(0, 1, 3), (4, 8, 2)]))
            .finish();
        let v = parse_value(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("cycle").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("mpki").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].as_arr().unwrap()[2].as_u64(), Some(2));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_value(r#"{"a\n\"b":{"c":[null,false,1e3]},"d":""}"#).unwrap();
        let inner = v.get("a\n\"b").unwrap().get("c").unwrap();
        assert_eq!(
            inner.as_arr().unwrap(),
            &[Value::Null, Value::Bool(false), Value::F64(1000.0)]
        );
        assert_eq!(v.get("d").unwrap().as_str(), Some(""));
        assert_eq!(parse_value(r#""café""#).unwrap().as_str(), Some("café"));
        assert_eq!(parse_value("\"caf\u{e9}\"").unwrap().as_str(), Some("café"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"x",
            "{\"a\":1} extra",
            "{1:2}",
        ] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_stay_exact_and_floats_fall_back() {
        assert_eq!(
            parse_value("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse_value("-3").unwrap(), Value::F64(-3.0));
        assert_eq!(parse_value("2.5").unwrap(), Value::F64(2.5));
    }
}
