//! Output sinks: JSONL and TSV writers over a finished [`MetricsProbe`],
//! and a bounded in-memory [`RingBufferProbe`] for tests.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::collector::{MetricsProbe, Snapshot};
use crate::event::Event;
use crate::json::{self, Obj};
use crate::probe::Probe;
use crate::span::SpanTree;
use crate::SCHEMA_VERSION;

/// Builds the standard `type:"run"` header record for a metrics file.
/// Carries [`SCHEMA_VERSION`] so consumers can reject formats they do
/// not understand.
pub fn run_header(design: &str, workload: &str, seed: u64, sample_every: u64) -> Obj {
    Obj::new()
        .str("type", "run")
        .str("design", design)
        .str("workload", workload)
        .u64("seed", seed)
        .u64("sample_every", sample_every)
        .u64("schema_version", SCHEMA_VERSION)
}

fn snapshot_line(s: &Snapshot) -> String {
    let mut o = Obj::new()
        .str("type", "snapshot")
        .u64("cycle", s.cycle)
        .u64("resident_data", s.resident_data)
        .u64("resident_tag_only", s.resident_tag_only)
        .u64("instructions", s.instructions)
        .u64("data_hits", s.data_hits)
        .u64("tag_only_hits", s.tag_only_hits)
        .u64("misses", s.misses)
        .u64("fills", s.fills)
        .u64("evictions", s.evictions)
        .u64("saes", s.saes)
        .u64("dram_reads", s.dram_reads);
    if let Some(mpki) = s.mpki() {
        o = o.f64("mpki", mpki);
    }
    o.finish()
}

/// Writes the full JSONL dump of a finished probe: one `run` header line,
/// the snapshot time-series, every counter, every histogram, and a
/// trailing `end` record with record counts (a cheap integrity check for
/// consumers).
pub fn write_jsonl(w: &mut dyn Write, header: Obj, probe: &MetricsProbe) -> io::Result<()> {
    write_jsonl_with_spans(w, header, probe, None)
}

/// [`write_jsonl`] plus one `type:"span"` line per aggregated span-tree
/// path (emitted between the histograms and the `end` record, which then
/// also counts them). `wall_nanos` is 0 unless a harness injected a wall
/// timer; all other span fields are deterministic.
pub fn write_jsonl_with_spans(
    w: &mut dyn Write,
    header: Obj,
    probe: &MetricsProbe,
    spans: Option<&SpanTree>,
) -> io::Result<()> {
    writeln!(w, "{}", header.finish())?;
    for s in probe.snapshots() {
        writeln!(w, "{}", snapshot_line(s))?;
    }
    let mut counters = 0u64;
    for (name, value) in probe.registry().counters() {
        writeln!(
            w,
            "{}",
            Obj::new()
                .str("type", "counter")
                .str("name", name)
                .u64("value", value)
                .finish()
        )?;
        counters = counters.saturating_add(1);
    }
    let mut histograms = 0u64;
    for (name, h) in probe.registry().histograms() {
        let mut o = Obj::new()
            .str("type", "histogram")
            .str("name", name)
            .u64("count", h.count())
            .u64("sum", h.sum());
        if let (Some(min), Some(max), Some(mean)) = (h.min(), h.max(), h.mean()) {
            o = o.u64("min", min).u64("max", max).f64("mean", mean);
        }
        writeln!(
            w,
            "{}",
            o.raw("buckets", &json::array_buckets(h.nonzero_buckets()))
                .finish()
        )?;
        histograms = histograms.saturating_add(1);
    }
    let mut span_lines = 0u64;
    if let Some(tree) = spans {
        for (path, s) in tree.paths() {
            writeln!(
                w,
                "{}",
                Obj::new()
                    .str("type", "span")
                    .str("path", &path)
                    .u64("count", s.count)
                    .u64("cycles", s.cycles)
                    .u64("accesses", s.accesses)
                    .u64("wall_nanos", s.wall_nanos)
                    .finish()
            )?;
            span_lines = span_lines.saturating_add(1);
        }
    }
    let mut end = Obj::new()
        .str("type", "end")
        .u64("snapshots", probe.snapshots().len() as u64)
        .u64("counters", counters)
        .u64("histograms", histograms);
    if spans.is_some() {
        end = end.u64("spans", span_lines);
    }
    writeln!(w, "{}", end.finish())?;
    Ok(())
}

/// Writes a flat TSV dump: `counter <name> <value>` and
/// `histogram <name> <count> <sum> <min> <max>` rows, tab-separated.
pub fn write_tsv(w: &mut dyn Write, probe: &MetricsProbe) -> io::Result<()> {
    writeln!(w, "kind\tname\tvalue\tsum\tmin\tmax")?;
    for (name, value) in probe.registry().counters() {
        writeln!(w, "counter\t{name}\t{value}\t\t\t")?;
    }
    for (name, h) in probe.registry().histograms() {
        writeln!(
            w,
            "histogram\t{name}\t{}\t{}\t{}\t{}",
            h.count(),
            h.sum(),
            h.min().map_or(String::new(), |v| v.to_string()),
            h.max().map_or(String::new(), |v| v.to_string()),
        )?;
    }
    Ok(())
}

/// A [`Probe`] retaining the last `capacity` events verbatim (plus a total
/// count), for tests that assert on exact event sequences.
#[derive(Debug, Clone, Default)]
pub struct RingBufferProbe {
    capacity: usize,
    events: VecDeque<Event>,
    total: u64,
}

impl RingBufferProbe {
    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            total: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Total events ever recorded (including any that fell off the ring).
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl Probe for RingBufferProbe {
    fn record(&mut self, event: &Event) {
        self.total = self.total.saturating_add(1);
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn probe_with_traffic() -> MetricsProbe {
        let mut p = MetricsProbe::new(10);
        for c in 1..=25u64 {
            p.record(&Event {
                cycle: c,
                kind: EventKind::Fill {
                    line: c,
                    tag_only: false,
                    skew: 0,
                },
            });
        }
        p.record(&Event {
            cycle: 26,
            kind: EventKind::Hit { line: 1 },
        });
        p.finalize(30);
        p
    }

    #[test]
    fn jsonl_dump_has_header_snapshots_and_end() {
        let p = probe_with_traffic();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, run_header("maya", "mix", 42, 10), &p).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with(r#"{"type":"run","design":"maya""#));
        assert!(lines[1].starts_with(r#"{"type":"snapshot","cycle":10"#));
        assert!(lines.last().unwrap().starts_with(r#"{"type":"end""#));
        // Every line is a braced object with balanced quotes.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        }
        // 3 periodic snapshots (10, 20) + final (30).
        assert_eq!(p.snapshots().len(), 3);
        assert!(text.contains(r#""name":"llc.reuse_distance""#));
        assert!(text.contains(r#""name":"llc.fill.data","value":25"#));
    }

    #[test]
    fn jsonl_header_carries_the_schema_version() {
        let p = probe_with_traffic();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, run_header("maya", "mix", 42, 10), &p).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.lines()
                .next()
                .unwrap()
                .contains(&format!(r#""schema_version":{}"#, crate::SCHEMA_VERSION)),
            "run header must be schema-stamped"
        );
    }

    #[test]
    fn span_lines_land_between_histograms_and_end() {
        use crate::profile::{ProfileHandle, SpanProfiler};
        use crate::span::Component;
        let p = probe_with_traffic();
        let (h, rc) = ProfileHandle::of(SpanProfiler::new());
        {
            let _run = h.span(Component::Run);
            h.set_cycle(9);
            let _llc = h.span(Component::Llc);
            h.set_cycle(12);
        }
        let tree = rc.borrow().tree();
        let mut buf = Vec::new();
        write_jsonl_with_spans(&mut buf, run_header("maya", "mix", 1, 0), &p, Some(&tree)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(r#"{"type":"span","path":"run","count":1,"cycles":12"#));
        assert!(text.contains(r#""path":"run;llc","count":1,"cycles":3"#));
        assert!(text.lines().last().unwrap().contains(r#""spans":2"#));
    }

    #[test]
    fn tsv_dump_lists_counters_and_histograms() {
        let p = probe_with_traffic();
        let mut buf = Vec::new();
        write_tsv(&mut buf, &p).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("kind\tname\tvalue"));
        assert!(text.contains("counter\tllc.fill.data\t25"));
        assert!(text.contains("histogram\tllc.reuse_distance\t1"));
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut r = RingBufferProbe::new(2);
        for c in 0..5u64 {
            r.record(&Event {
                cycle: c,
                kind: EventKind::DramWrite,
            });
        }
        assert_eq!(r.total(), 5);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }
}
