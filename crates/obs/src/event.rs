//! The structured event model: everything the cache hierarchy, DRAM, and
//! the attack framework can report about one simulated moment.
//!
//! Events are plain data stamped with a *simulated* cycle — never
//! wall-clock time — so a trace is a pure function of (workload, seed) and
//! two runs of the same configuration produce byte-identical traces.

/// Why a resident entry left the cache (or was downgraded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvictionCause {
    /// Set-associative eviction: every tag way of the selected set was
    /// valid. The security-critical event for randomized designs.
    Sae,
    /// Global random data eviction (Mirage/Maya/Threshold): a uniformly
    /// random data entry was released; in Maya the owning tag survives as
    /// priority-0.
    GlobalData,
    /// Global random tag eviction (Maya): a uniformly random priority-0
    /// tag was invalidated to hold the tag-only population at its target.
    GlobalTag,
    /// Ordinary replacement-policy eviction (set-associative designs).
    Replacement,
    /// Explicit invalidation via `flush_line`.
    Flush,
}

impl EvictionCause {
    /// Stable lower-case name used in sinks and counter namespaces.
    pub fn name(self) -> &'static str {
        match self {
            EvictionCause::Sae => "sae",
            EvictionCause::GlobalData => "global_data",
            EvictionCause::GlobalTag => "global_tag",
            EvictionCause::Replacement => "replacement",
            EvictionCause::Flush => "flush",
        }
    }
}

/// What happened. Line addresses are cache-line addresses (byte >> 6);
/// `skew` is the tag-store skew an entry lives in (0 for designs without
/// skewed indexing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tag was installed: `tag_only` for Maya's priority-0 fills (no
    /// data), otherwise tag and data together.
    Fill {
        /// Line installed.
        line: u64,
        /// True for a priority-0 (tag-only) install.
        tag_only: bool,
        /// Tag-store skew chosen for the install.
        skew: u8,
    },
    /// A demand or writeback was served from the data store.
    Hit {
        /// Line that hit.
        line: u64,
    },
    /// Maya only: the request found a priority-0 tag — the requester still
    /// observes a miss, but the entry proves reuse.
    TagOnlyHit {
        /// Line that tag-hit.
        line: u64,
    },
    /// Maya only: a priority-0 entry was promoted to priority-1 and a data
    /// entry allocated for it.
    Promotion {
        /// Line promoted.
        line: u64,
    },
    /// Complete miss (no valid tag matched).
    Miss {
        /// Line that missed.
        line: u64,
    },
    /// A resident entry was evicted or downgraded.
    Eviction {
        /// Line evicted.
        line: u64,
        /// Why it was evicted.
        cause: EvictionCause,
        /// True if the entry held a data-store entry (false for tag-only).
        had_data: bool,
        /// True if the freed data was dirty (a writeback to memory).
        dirty: bool,
        /// True if the data had been demand-reused since its fill.
        reused: bool,
        /// True if the tag survives as a priority-0 entry (Maya's global
        /// data eviction downgrades rather than invalidates).
        downgraded: bool,
        /// Tag-store skew the victim lived in.
        skew: u8,
    },
    /// The whole cache was invalidated (`flush_all`). Consumers must reset
    /// any residency accounting.
    FlushAll,
    /// The index function was re-keyed (Maya/Mirage rekey, CEASER remap
    /// epoch).
    EpochRekey,
    /// The prefetcher issued a fill for `line` into the hierarchy.
    PrefetchIssue {
        /// Line prefetched.
        line: u64,
    },
    /// A demand merged with a still-in-flight prefetch (late prefetch).
    PrefetchLateMerge {
        /// Line whose prefetch was late.
        line: u64,
    },
    /// DRAM serviced a read; `row_hit` distinguishes an open-row CAS from
    /// a full precharge-activate row conflict.
    DramRead {
        /// True for an open-row hit.
        row_hit: bool,
    },
    /// DRAM absorbed a writeback burst.
    DramWrite,
    /// A core retired `instructions` instructions (trace-record grain).
    Retire {
        /// Instructions retired by this record.
        instructions: u32,
    },
    /// A demand load completed; `latency` is the total simulated-cycle
    /// cost the core observed (L1 hit time through DRAM, as applicable).
    /// The collector folds these into the `core.load_latency` histogram.
    LoadComplete {
        /// End-to-end load latency in simulated cycles.
        latency: u64,
    },
    /// The occupancy attacker measured one sample: `evicted` of its lines
    /// had been displaced by the victim.
    OccupancySample {
        /// Attacker lines found missing.
        evicted: u64,
    },
    /// A fault was injected into the wrapped model (maya-fault).
    FaultInjected {
        /// Stable name of the fault class (e.g. `"tag_bit"`).
        class: &'static str,
    },
    /// A scrub pass found the injected corruption via `audit()`.
    FaultDetected,
    /// Recovery completed after a detected fault (or a forced recovery).
    Recovered {
        /// Entries the quarantine pass repaired or dropped.
        quarantined: u64,
        /// True if quarantine was insufficient and recovery escalated to a
        /// full flush.
        escalated: bool,
    },
}

impl EventKind {
    /// Stable counter-namespace name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Fill { tag_only: true, .. } => "llc.fill.tag_only",
            EventKind::Fill { .. } => "llc.fill.data",
            EventKind::Hit { .. } => "llc.hit.data",
            EventKind::TagOnlyHit { .. } => "llc.hit.tag_only",
            EventKind::Promotion { .. } => "llc.promotion",
            EventKind::Miss { .. } => "llc.miss",
            EventKind::Eviction { cause, .. } => match cause {
                EvictionCause::Sae => "llc.eviction.sae",
                EvictionCause::GlobalData => "llc.eviction.global_data",
                EvictionCause::GlobalTag => "llc.eviction.global_tag",
                EvictionCause::Replacement => "llc.eviction.replacement",
                EvictionCause::Flush => "llc.eviction.flush",
            },
            EventKind::FlushAll => "llc.flush_all",
            EventKind::EpochRekey => "llc.rekey",
            EventKind::PrefetchIssue { .. } => "prefetch.issue",
            EventKind::PrefetchLateMerge { .. } => "prefetch.late_merge",
            EventKind::DramRead { row_hit: true } => "dram.read.row_hit",
            EventKind::DramRead { .. } => "dram.read.row_conflict",
            EventKind::DramWrite => "dram.write",
            EventKind::Retire { .. } => "core.retire",
            EventKind::LoadComplete { .. } => "core.load_complete",
            EventKind::OccupancySample { .. } => "attack.occupancy_sample",
            EventKind::FaultInjected { .. } => "fault.injected",
            EventKind::FaultDetected => "fault.detected",
            EventKind::Recovered { .. } => "fault.recovered",
        }
    }
}

/// One cycle-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle at which the event occurred (the probe clock's
    /// value; 0 when models run standalone without a driver).
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_namespaced_and_distinct() {
        let kinds = [
            EventKind::Fill {
                line: 0,
                tag_only: true,
                skew: 0,
            },
            EventKind::Fill {
                line: 0,
                tag_only: false,
                skew: 0,
            },
            EventKind::Hit { line: 0 },
            EventKind::TagOnlyHit { line: 0 },
            EventKind::Promotion { line: 0 },
            EventKind::Miss { line: 0 },
            EventKind::FlushAll,
            EventKind::EpochRekey,
            EventKind::PrefetchIssue { line: 0 },
            EventKind::PrefetchLateMerge { line: 0 },
            EventKind::DramRead { row_hit: true },
            EventKind::DramRead { row_hit: false },
            EventKind::DramWrite,
            EventKind::Retire { instructions: 1 },
            EventKind::LoadComplete { latency: 1 },
            EventKind::OccupancySample { evicted: 1 },
            EventKind::FaultInjected { class: "tag_bit" },
            EventKind::FaultDetected,
            EventKind::Recovered {
                quarantined: 0,
                escalated: false,
            },
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate event names");
        assert!(names.iter().all(|n| n.contains('.')));
    }

    #[test]
    fn eviction_names_follow_cause() {
        for cause in [
            EvictionCause::Sae,
            EvictionCause::GlobalData,
            EvictionCause::GlobalTag,
            EvictionCause::Replacement,
            EvictionCause::Flush,
        ] {
            let k = EventKind::Eviction {
                line: 1,
                cause,
                had_data: true,
                dirty: false,
                reused: false,
                downgraded: false,
                skew: 0,
            };
            assert_eq!(k.name(), format!("llc.eviction.{}", cause.name()));
        }
    }
}
