//! The component-span taxonomy and the aggregated span tree.
//!
//! A *span* is a scoped region of work attributed to one [`Component`]
//! (PRINCE encryption, index derivation, replacement, DRAM, …). Spans
//! nest: entering `Component::Llc` while `Component::Core` is open
//! produces the path `run;core;llc`. The profiler aggregates every
//! distinct path into one [`SpanStats`] node — there is no per-event
//! allocation, so profiling scales to billions of spans.
//!
//! Each node carries the *dual clocks* of the profiling design:
//!
//! * `cycles` / `accesses` — deltas of the simulated-cycle and access
//!   counters, advanced by the simulator. Deterministic: identical on
//!   every run of the same workload, and exactly zero perturbation of the
//!   simulation itself.
//! * `wall_nanos` — deltas of an injected wall timer. Only harness-class
//!   crates may inject one (the lint's wall-clock rule pins this); when no
//!   timer is injected the field stays 0 and the tree remains fully
//!   deterministic.

use std::fmt::Write as _;

/// The closed vocabulary of profiled components.
///
/// Stable names (see [`Component::as_str`]) appear in sidecar JSONL
/// `span` records and in collapsed-stack flamegraph paths; renaming one
/// is a schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// The whole simulation run (root of the simulator's span tree).
    Run,
    /// Next-core selection in the multi-core interleaver.
    Sched,
    /// One core step: trace generation, L1/L2 walk, retire accounting.
    Core,
    /// A last-level-cache lookup (`CacheModel::access`).
    Llc,
    /// Set-index derivation (batched skew-index computation).
    IndexDerive,
    /// PRINCE block encryption (memo misses only; memo hits skip it).
    Prince,
    /// Replacement: victim choice and global evictions.
    Replacement,
    /// DRAM reads and writes, including row-buffer bookkeeping.
    Dram,
    /// Prefetch issue and fill.
    Prefetch,
    /// Periodic `CacheModel::audit` invariant sweeps.
    Audit,
}

impl Component {
    /// The stable, lowercase name used in span records and flame paths.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Run => "run",
            Component::Sched => "sched",
            Component::Core => "core",
            Component::Llc => "llc",
            Component::IndexDerive => "index_derive",
            Component::Prince => "prince",
            Component::Replacement => "replacement",
            Component::Dram => "dram",
            Component::Prefetch => "prefetch",
            Component::Audit => "audit",
        }
    }

    /// Every component, for closed-vocabulary tests.
    pub fn all() -> [Component; 10] {
        [
            Component::Run,
            Component::Sched,
            Component::Core,
            Component::Llc,
            Component::IndexDerive,
            Component::Prince,
            Component::Replacement,
            Component::Dram,
            Component::Prefetch,
            Component::Audit,
        ]
    }
}

/// Aggregated measurements for one span-tree node (one distinct path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of times this exact path was entered.
    pub count: u64,
    /// Total simulated-cycle delta accumulated across entries.
    pub cycles: u64,
    /// Total access-counter delta accumulated across entries.
    pub accesses: u64,
    /// Total injected wall-timer delta (nanoseconds); 0 when no wall
    /// timer is attached.
    pub wall_nanos: u64,
}

impl SpanStats {
    /// Folds `other` into `self` (saturating).
    pub fn absorb(&mut self, other: &SpanStats) {
        self.count = self.count.saturating_add(other.count);
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.accesses = self.accesses.saturating_add(other.accesses);
        self.wall_nanos = self.wall_nanos.saturating_add(other.wall_nanos);
    }
}

/// One interned node of the span tree.
#[derive(Debug, Clone)]
pub(crate) struct SpanNode {
    pub(crate) name: &'static str,
    pub(crate) children: Vec<usize>,
    pub(crate) stats: SpanStats,
}

/// The aggregated span tree: nodes interned by path, root at index 0.
///
/// The root is synthetic (empty name) and never reported; its children
/// are the top-level spans (`run` for simulator-driven trees).
#[derive(Debug, Clone)]
pub struct SpanTree {
    pub(crate) nodes: Vec<SpanNode>,
}

impl Default for SpanTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTree {
    /// An empty tree holding only the synthetic root.
    pub fn new() -> Self {
        Self {
            nodes: vec![SpanNode {
                name: "",
                children: Vec::new(),
                stats: SpanStats::default(),
            }],
        }
    }

    /// Index of `name` under `parent`, interning a new node if absent.
    pub(crate) fn child_of(&mut self, parent: usize, name: &'static str) -> usize {
        let hit = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        match hit {
            Some(c) => c,
            None => {
                let id = self.nodes.len();
                self.nodes.push(SpanNode {
                    name,
                    children: Vec::new(),
                    stats: SpanStats::default(),
                });
                self.nodes[parent].children.push(id);
                id
            }
        }
    }

    /// Every `(path, stats)` pair in deterministic order: depth-first,
    /// children sorted by name, paths joined with `;` (the collapsed-stack
    /// separator).
    pub fn paths(&self) -> Vec<(String, SpanStats)> {
        let mut out = Vec::new();
        self.walk(0, "", &mut out);
        out
    }

    fn walk(&self, node: usize, prefix: &str, out: &mut Vec<(String, SpanStats)>) {
        let mut kids: Vec<usize> = self.nodes[node].children.clone();
        kids.sort_by_key(|&c| self.nodes[c].name);
        for c in kids {
            let path = if prefix.is_empty() {
                self.nodes[c].name.to_string()
            } else {
                let mut p = String::with_capacity(prefix.len() + 1 + self.nodes[c].name.len());
                p.push_str(prefix);
                p.push(';');
                p.push_str(self.nodes[c].name);
                p
            };
            out.push((path.clone(), self.nodes[c].stats));
            self.walk(c, &path, out);
        }
    }

    /// Sum of the children's `field` under `node_path`, plus that node's
    /// own stats, as `(node_stats, child_sum)`. Returns `None` if the path
    /// does not exist.
    pub fn node_and_child_sum(&self, node_path: &str) -> Option<(SpanStats, SpanStats)> {
        let mut cur = 0usize;
        for part in node_path.split(';') {
            cur = self.nodes[cur]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].name == part)?;
        }
        let mut child_sum = SpanStats::default();
        for &c in &self.nodes[cur].children {
            child_sum.absorb(&self.nodes[c].stats);
        }
        Some((self.nodes[cur].stats, child_sum))
    }

    /// Renders inferno-compatible collapsed-stack lines: one
    /// `path value\n` per node, where `value` is the node's *self* share
    /// of `pick(stats)` (its total minus its children's totals, clamped at
    /// 0). Lines are emitted in deterministic path order; zero-valued
    /// lines are kept so the full taxonomy is visible.
    pub fn collapsed(&self, pick: impl Fn(&SpanStats) -> u64) -> String {
        let mut out = String::new();
        self.collapse_walk(0, "", &pick, &mut out);
        out
    }

    fn collapse_walk(
        &self,
        node: usize,
        prefix: &str,
        pick: &impl Fn(&SpanStats) -> u64,
        out: &mut String,
    ) {
        let mut kids: Vec<usize> = self.nodes[node].children.clone();
        kids.sort_by_key(|&c| self.nodes[c].name);
        for c in kids {
            let path = if prefix.is_empty() {
                self.nodes[c].name.to_string()
            } else {
                format!("{prefix};{}", self.nodes[c].name)
            };
            let total = pick(&self.nodes[c].stats);
            let child_sum: u64 = self.nodes[c].children.iter().fold(0u64, |acc, &k| {
                acc.saturating_add(pick(&self.nodes[k].stats))
            });
            let own = total.saturating_sub(child_sum);
            let _ = writeln!(out, "{path} {own}");
            self.collapse_walk(c, &path, pick, out);
        }
    }

    /// Merges `other` into `self`: stats of identical paths add, new
    /// paths are interned. Associative and commutative up to child
    /// ordering (which `paths()` normalizes by sorting).
    pub fn absorb(&mut self, other: &SpanTree) {
        self.absorb_at(0, other, 0);
    }

    fn absorb_at(&mut self, into: usize, other: &SpanTree, from: usize) {
        let kids = other.nodes[from].children.clone();
        for c in kids {
            let name = other.nodes[c].name;
            let id = self.child_of(into, name);
            let stats = other.nodes[c].stats;
            self.nodes[id].stats.absorb(&stats);
            self.absorb_at(id, other, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_names_are_distinct_and_stable() {
        let names: Vec<&str> = Component::all().iter().map(|c| c.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate component name");
        assert!(names.contains(&"index_derive"));
        assert!(names.contains(&"prince"));
    }

    fn tree_abc() -> SpanTree {
        let mut t = SpanTree::new();
        let run = t.child_of(0, "run");
        let core = t.child_of(run, "core");
        let llc = t.child_of(core, "llc");
        t.nodes[run].stats = SpanStats {
            count: 1,
            cycles: 100,
            accesses: 10,
            wall_nanos: 1000,
        };
        t.nodes[core].stats = SpanStats {
            count: 10,
            cycles: 90,
            accesses: 10,
            wall_nanos: 800,
        };
        t.nodes[llc].stats = SpanStats {
            count: 5,
            cycles: 40,
            accesses: 5,
            wall_nanos: 300,
        };
        t
    }

    #[test]
    fn paths_are_deterministic_and_nested() {
        let t = tree_abc();
        let paths: Vec<String> = t.paths().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["run", "run;core", "run;core;llc"]);
    }

    #[test]
    fn collapsed_reports_self_values() {
        let t = tree_abc();
        let flame = t.collapsed(|s| s.wall_nanos);
        assert_eq!(flame, "run 200\nrun;core 500\nrun;core;llc 300\n");
        let by_count = t.collapsed(|s| s.count);
        assert!(by_count.starts_with("run 0\n"), "{by_count}");
    }

    #[test]
    fn absorb_adds_matching_paths_and_interns_new_ones() {
        let mut a = tree_abc();
        let mut b = SpanTree::new();
        let run = b.child_of(0, "run");
        let dram = b.child_of(run, "dram");
        b.nodes[run].stats.count = 2;
        b.nodes[dram].stats.cycles = 7;
        a.absorb(&b);
        let paths = a.paths();
        let run_stats = paths.iter().find(|(p, _)| p == "run").unwrap().1;
        assert_eq!(run_stats.count, 3);
        let dram_stats = paths.iter().find(|(p, _)| p == "run;dram").unwrap().1;
        assert_eq!(dram_stats.cycles, 7);
    }

    #[test]
    fn node_and_child_sum_splits_self_from_children() {
        let t = tree_abc();
        let (run, kids) = t.node_and_child_sum("run").unwrap();
        assert_eq!(run.wall_nanos, 1000);
        assert_eq!(kids.wall_nanos, 800);
        assert!(t.node_and_child_sum("run;nope").is_none());
    }
}
