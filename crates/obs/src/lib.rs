//! `maya-obs`: a deterministic, dependency-free observability layer for
//! the Maya reproduction.
//!
//! Every cache model, the simulator, and the attack framework can emit
//! cycle-stamped structured [`Event`]s through a [`ProbeHandle`]. Handles
//! default to inactive ([`ProbeHandle::none`]), in which case emission is
//! one branch and un-instrumented runs stay bit- and speed-identical.
//! Attaching a probe never changes simulation behaviour — probes receive
//! copies of plain data, not access to the models.
//!
//! The standard consumer is [`MetricsProbe`]: namespaced counters (one per
//! event name), log2-bucketed [`Histogram`]s (reuse distance, priority-0
//! lifetime, per-skew occupancy, DRAM row-hit streaks), and a periodic
//! [`Snapshot`] time-series. Results serialize through the hand-rolled
//! JSONL/TSV sinks in [`sink`] — this crate deliberately has **zero**
//! dependencies, so no serialization, time, or randomness crate can leak
//! into the deterministic core.
//!
//! Determinism contract: events carry *simulated* cycles only. This crate
//! is in maya-lint's model-crate scope, so wall-clock types
//! (`std::time::Instant`) are rejected by the linter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod event;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod report;
pub mod sink;
pub mod span;
pub mod sweep;

/// Version of every schema this crate emits: metrics-sidecar JSONL run
/// headers, sweep sidecar summaries, and the BENCH perf/diag/history
/// records the harness writes. Consumers (`obs-report`, the regression
/// detector) reject records stamped with a *newer* version than they
/// understand; records with no stamp predate versioning and are
/// rejected too.
pub const SCHEMA_VERSION: u64 = 2;

pub use collector::{MetricsProbe, Snapshot, MAX_SKEWS};
pub use event::{Event, EventKind, EvictionCause};
pub use metrics::{Histogram, MetricsRegistry};
pub use probe::{NopProbe, Probe, ProbeHandle};
pub use profile::{ProfileHandle, SpanGuard, SpanProfiler};
pub use sink::{run_header, write_jsonl, write_jsonl_with_spans, write_tsv, RingBufferProbe};
pub use span::{Component, SpanStats, SpanTree};
