//! `obs-report`: merges the per-cell metrics sidecars and sweep
//! sidecars of one `--metrics-dir` into a single report.
//!
//! ```text
//! obs-report <metrics-dir> [--out DIR] [--top N]
//!            [--bench FILE]... [--attribution DESIGN:MINFRAC]...
//! ```
//!
//! Artifacts written to `--out` (default `<metrics-dir>/report`):
//!
//! * `report.md`, `report.tsv`, `flame.folded` — deterministic: byte-
//!   identical across reruns and worker counts.
//! * `report_wall.md`, `flame_wall.folded` — wall-clock views, which
//!   vary run to run and are excluded from byte-identity checks.
//!
//! `--bench FILE` schema-validates a BENCH JSONL file (perf, diag, or
//! history records). `--attribution DESIGN:MINFRAC` exits non-zero
//! unless at least `MINFRAC` of DESIGN's measured `run` wall time is
//! attributed to named component spans.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use maya_obs::report::{build_report, validate_bench_text, Report, ReportInput};

struct Options {
    metrics_dir: PathBuf,
    out_dir: Option<PathBuf>,
    top: usize,
    bench: Vec<PathBuf>,
    attribution: Vec<(String, f64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs-report <metrics-dir> [--out DIR] [--top N] \
         [--bench FILE]... [--attribution DESIGN:MINFRAC]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        metrics_dir: PathBuf::new(),
        out_dir: None,
        top: 10,
        bench: Vec::new(),
        attribution: Vec::new(),
    };
    let mut dir_seen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(d) => opts.out_dir = Some(PathBuf::from(d)),
                None => usage(),
            },
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.top = n,
                None => usage(),
            },
            "--bench" => match args.next() {
                Some(f) => opts.bench.push(PathBuf::from(f)),
                None => usage(),
            },
            "--attribution" => {
                let Some(spec) = args.next() else { usage() };
                let Some((design, frac)) = spec.split_once(':') else {
                    usage()
                };
                let Ok(frac) = frac.parse::<f64>() else {
                    usage()
                };
                opts.attribution.push((design.to_string(), frac));
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && !dir_seen => {
                opts.metrics_dir = PathBuf::from(other);
                dir_seen = true;
            }
            _ => usage(),
        }
    }
    if !dir_seen {
        usage();
    }
    opts
}

/// All files in `dir` whose name starts with `prefix` and ends with
/// `.jsonl`, read fully, sorted by file name for deterministic merge
/// order and error reporting.
fn inputs_with_prefix(dir: &Path, prefix: &str) -> Result<Vec<ReportInput>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with(prefix) && n.ends_with(".jsonl"))
        .collect();
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let path = dir.join(&name);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.push(ReportInput { name, text });
    }
    Ok(out)
}

fn write_artifact(dir: &Path, name: &str, contents: &str) -> Result<(), String> {
    let path = dir.join(name);
    fs::write(&path, contents).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn run_report(opts: &Options) -> Result<Report, String> {
    let metrics = inputs_with_prefix(&opts.metrics_dir, "metrics_")?;
    let sweeps = inputs_with_prefix(&opts.metrics_dir, "sweep_")?;
    if metrics.is_empty() && sweeps.is_empty() {
        return Err(format!(
            "{}: no metrics_*.jsonl or sweep_*.jsonl files found \
             (was the sweep run with --metrics-dir?)",
            opts.metrics_dir.display()
        ));
    }
    let report = build_report(&metrics, &sweeps)?;
    for bench in &opts.bench {
        let text =
            fs::read_to_string(bench).map_err(|e| format!("reading {}: {e}", bench.display()))?;
        let name = bench
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| bench.display().to_string());
        let checked = validate_bench_text(&name, &text)?;
        println!("obs-report: {name}: {checked} schema-stamped record(s) OK");
    }
    Ok(report)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let report = match run_report(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs-report: error: {e}");
            return ExitCode::from(1);
        }
    };
    let out_dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| opts.metrics_dir.join("report"));
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("obs-report: error: creating {}: {e}", out_dir.display());
        return ExitCode::from(1);
    }
    let artifacts = [
        ("report.md", report.render_markdown(opts.top)),
        ("report.tsv", report.render_tsv()),
        ("flame.folded", report.render_flame()),
        ("report_wall.md", report.render_wall_markdown(opts.top)),
        ("flame_wall.folded", report.render_flame_wall()),
    ];
    for (name, contents) in &artifacts {
        if let Err(e) = write_artifact(&out_dir, name, contents) {
            eprintln!("obs-report: error: {e}");
            return ExitCode::from(1);
        }
    }
    println!(
        "obs-report: wrote {} artifact(s) to {} ({} design(s), {} sweep(s), {} failed cell(s))",
        artifacts.len(),
        out_dir.display(),
        report.designs.len(),
        report.sweeps.len(),
        report.failed_cells.len(),
    );
    let mut failed = false;
    for (design, min_frac) in &opts.attribution {
        match report.attribution(design) {
            Some(frac) if frac >= *min_frac => {
                println!(
                    "obs-report: attribution {design}: {:.1}% >= {:.1}% OK",
                    frac * 100.0,
                    min_frac * 100.0
                );
            }
            Some(frac) => {
                eprintln!(
                    "obs-report: attribution {design}: {:.1}% < required {:.1}%",
                    frac * 100.0,
                    min_frac * 100.0
                );
                failed = true;
            }
            None => {
                eprintln!("obs-report: attribution {design}: no wall-timed `run` span in input");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
