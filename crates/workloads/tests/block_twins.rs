//! Batched-vs-per-access twin tests.
//!
//! `TraceGenerator::fill_block` must be indistinguishable from calling
//! `next_access` in a loop — the simulator's fused dispatch loop relies on
//! it, and the layout-equivalence fixtures assume it. These twins cover one
//! benchmark per generator family (streaming, pointer-chasing, reuse,
//! phased, graph-like), odd block-boundary sizes, and a property test over
//! arbitrary interleavings of block sizes.

use proptest::prelude::*;
use workloads::spec::benchmark;
use workloads::{Access, TraceGenerator};

/// One representative per component family (see `workloads::components`):
/// `lbm` = streaming stores, `mcf` = pointer chase, `leela` = small reused
/// working set, `cactuBSSN` = phased regions, `pr` = graph-like
/// (power-law working set + chase).
const FAMILIES: [&str; 5] = ["lbm", "mcf", "leela", "cactuBSSN", "pr"];

const PLACEHOLDER: Access = Access {
    addr: 0,
    is_write: false,
    pc: 0,
    gap: 0,
    dependent: false,
};

fn stream_via_blocks(name: &str, core: usize, seed: u64, sizes: &[usize]) -> Vec<Access> {
    let mut g = benchmark(name).unwrap().generator(core, seed);
    let mut out = Vec::new();
    for &sz in sizes {
        let mut buf = vec![PLACEHOLDER; sz];
        g.fill_block(&mut buf);
        out.extend_from_slice(&buf);
    }
    out
}

fn stream_per_access(name: &str, core: usize, seed: u64, n: usize) -> Vec<Access> {
    let mut g = benchmark(name).unwrap().generator(core, seed);
    (0..n).map(|_| g.next_access()).collect()
}

#[test]
fn every_family_matches_at_boundary_sizes() {
    // 1, 7, block-1, block, block+1 for the cache's block size of 256.
    let sizes = [1usize, 7, 255, 256, 257];
    let total: usize = sizes.iter().sum();
    for name in FAMILIES {
        let blocked = stream_via_blocks(name, 0, 0x51ed, &sizes);
        let plain = stream_per_access(name, 0, 0x51ed, total);
        assert_eq!(blocked, plain, "fill_block diverged for {name}");
    }
}

#[test]
fn cached_trace_matches_at_boundary_sizes() {
    let sizes = [1usize, 7, 255, 256, 257];
    let total: usize = sizes.iter().sum();
    for name in FAMILIES {
        let spec = benchmark(name).unwrap();
        let mut cache = workloads::block::TraceCache::default();
        let mut g = cache.generator(&spec, 0, 0x51ed);
        let mut blocked = Vec::new();
        for &sz in &sizes {
            let mut buf = vec![PLACEHOLDER; sz];
            g.fill_block(&mut buf);
            blocked.extend_from_slice(&buf);
        }
        let plain = stream_per_access(name, 0, 0x51ed, total);
        assert_eq!(blocked, plain, "CachedTrace diverged for {name}");
    }
}

#[test]
fn zero_length_block_is_a_no_op() {
    for name in FAMILIES {
        let sizes = [3usize, 0, 5, 0, 0, 8];
        let blocked = stream_via_blocks(name, 2, 7, &sizes);
        let plain = stream_per_access(name, 2, 7, 16);
        assert_eq!(blocked, plain);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of block sizes yields the identical stream, for a
    /// fresh generator and for a replaying cached cursor alike.
    #[test]
    fn arbitrary_block_interleavings_preserve_the_stream(
        family in 0usize..FAMILIES.len(),
        seed in any::<u64>(),
        sizes in proptest::collection::vec(0usize..300, 1..8),
    ) {
        let name = FAMILIES[family];
        let total: usize = sizes.iter().sum();
        let blocked = stream_via_blocks(name, 1, seed, &sizes);
        let plain = stream_per_access(name, 1, seed, total);
        prop_assert_eq!(&blocked, &plain);

        let spec = benchmark(name).unwrap();
        let mut cache = workloads::block::TraceCache::default();
        let mut g = cache.generator(&spec, 1, seed);
        let mut cached = Vec::new();
        for &sz in &sizes {
            let mut buf = vec![PLACEHOLDER; sz];
            g.fill_block(&mut buf);
            cached.extend_from_slice(&buf);
        }
        prop_assert_eq!(&cached, &plain);
    }
}
