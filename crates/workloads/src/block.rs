//! Block-granular trace replay cache.
//!
//! Experiment grids (`diag`, the experiment harness, weighted-speedup
//! "alone" runs) evaluate several cache designs against the *same*
//! `(benchmark, core, seed)` access stream. Re-synthesizing that stream
//! once per design is pure waste: the generators are deterministic, so the
//! second and later consumers can replay a recorded copy instead of paying
//! the mixture/RNG arithmetic again.
//!
//! [`TraceCache`] records each stream the first time it is pulled and hands
//! out [`CachedTrace`] replay cursors for every later request with the same
//! key. A cursor is itself a [`TraceGenerator`], so the simulator cannot
//! tell a recording from a replay — both paths are pinned byte-identical by
//! the twin tests in this module and by the layout-equivalence fixtures.
//!
//! Memory is bounded: when a *new* `(benchmark, seed)` group arrives while
//! the cache already buffers more than [`TraceCache::max_buffered`]
//! accesses, recordings belonging to other groups are dropped (they are
//! fully regenerable). The cache is thread-local, so parallel sweep jobs
//! each keep an independent cache and determinism at any `--jobs N` is
//! untouched.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::spec::{BenchmarkSpec, SyntheticTrace};
use crate::{Access, TraceGenerator};

/// Number of accesses synthesized per block when a replay cursor runs off
/// the recorded end of its stream.
///
/// 256 accesses × 24 bytes = 6 KB per extension: large enough to amortize
/// the virtual call and RNG setup, small enough that over-synthesis past
/// the last consumer's position stays negligible.
pub const BLOCK_ACCESSES: usize = 256;

const PLACEHOLDER: Access = Access {
    addr: 0,
    is_write: false,
    pc: 0,
    gap: 0,
    dependent: false,
};

/// A recorded stream: the live generator plus everything it has produced.
struct Recorded {
    gen: SyntheticTrace,
    buf: Vec<Access>,
}

impl Recorded {
    /// Ensures at least `need` accesses are recorded, synthesizing in
    /// [`BLOCK_ACCESSES`]-sized blocks.
    fn extend_to(&mut self, need: usize) {
        if self.buf.len() >= need {
            return;
        }
        let target = need.div_ceil(BLOCK_ACCESSES) * BLOCK_ACCESSES;
        let old = self.buf.len();
        self.buf.resize(target, PLACEHOLDER);
        let Recorded { gen, buf } = self;
        gen.fill_block(&mut buf[old..]);
    }
}

/// Replay cursor over a shared recorded stream.
///
/// Cloning the underlying recording is never needed: all cursors for one
/// key share the same [`Recorded`] buffer and advance independent
/// positions. The first cursor to reach unrecorded territory synthesizes
/// the next block for everyone.
pub struct CachedTrace {
    shared: Rc<RefCell<Recorded>>,
    pos: usize,
    name: &'static str,
}

impl TraceGenerator for CachedTrace {
    fn next_access(&mut self) -> Access {
        let mut rec = self.shared.borrow_mut();
        rec.extend_to(self.pos + 1);
        let a = rec.buf[self.pos];
        self.pos += 1;
        a
    }

    fn fill_block(&mut self, out: &mut [Access]) {
        let need = self.pos + out.len();
        let mut rec = self.shared.borrow_mut();
        rec.extend_to(need);
        out.copy_from_slice(&rec.buf[self.pos..need]);
        self.pos = need;
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Key identifying one deterministic stream.
type Key = (&'static str, usize, u64);

/// Cache of recorded synthetic streams, keyed by `(benchmark, core, seed)`.
pub struct TraceCache {
    entries: BTreeMap<Key, Rc<RefCell<Recorded>>>,
    /// Eviction threshold in buffered accesses across all recordings.
    max_buffered: usize,
    synthesized_streams: u64,
    replayed_streams: u64,
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_BUFFERED)
    }
}

/// Default [`TraceCache::max_buffered`]: ~6M accesses ≈ 144 MB, enough for
/// one full diag-scale benchmark across 8 cores with headroom.
pub const DEFAULT_MAX_BUFFERED: usize = 6_000_000;

impl TraceCache {
    /// Creates a cache that starts evicting foreign `(benchmark, seed)`
    /// groups once it buffers more than `max_buffered` accesses.
    pub fn new(max_buffered: usize) -> Self {
        TraceCache {
            entries: BTreeMap::new(),
            max_buffered,
            synthesized_streams: 0,
            replayed_streams: 0,
        }
    }

    /// Total accesses currently buffered across all recordings.
    pub fn buffered_accesses(&self) -> usize {
        self.entries.values().map(|rc| rc.borrow().buf.len()).sum()
    }

    /// `(synthesized, replayed)` stream counts since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.synthesized_streams, self.replayed_streams)
    }

    /// Returns a generator for `(spec, core, seed)`, replaying the recorded
    /// stream when one exists and recording a fresh one otherwise.
    pub fn generator(&mut self, spec: &BenchmarkSpec, core: usize, seed: u64) -> CachedTrace {
        let key: Key = (spec.name, core, seed);
        if let Some(rc) = self.entries.get(&key) {
            self.replayed_streams += 1;
            return CachedTrace {
                shared: Rc::clone(rc),
                pos: 0,
                name: spec.name,
            };
        }
        // A new (benchmark, seed) group displaces other groups' recordings
        // once the buffer budget is exceeded; same-group recordings (the
        // other cores of this mix) are kept.
        if self.buffered_accesses() > self.max_buffered {
            self.entries
                .retain(|&(name, _, s), _| name == spec.name && s == seed);
        }
        self.synthesized_streams += 1;
        let rc = Rc::new(RefCell::new(Recorded {
            gen: spec.generator(core, seed),
            buf: Vec::new(),
        }));
        self.entries.insert(key, Rc::clone(&rc));
        CachedTrace {
            shared: rc,
            pos: 0,
            name: spec.name,
        }
    }
}

thread_local! {
    static SHARED: RefCell<TraceCache> = RefCell::new(TraceCache::default());
}

/// Returns a replaying generator for `(spec, core, seed)` backed by the
/// thread-local shared [`TraceCache`].
pub fn cached_generator(spec: &BenchmarkSpec, core: usize, seed: u64) -> CachedTrace {
    SHARED.with(|c| c.borrow_mut().generator(spec, core, seed))
}

/// Boxes one thread-local cached generator per spec (one core each), in
/// core order — the shape `System::with_generators` consumes.
pub fn cached_generators(specs: &[BenchmarkSpec], seed: u64) -> Vec<Box<dyn TraceGenerator>> {
    specs
        .iter()
        .enumerate()
        .map(|(core, spec)| Box::new(cached_generator(spec, core, seed)) as Box<dyn TraceGenerator>)
        .collect()
}

/// `(synthesized, replayed)` stream counts of the thread-local cache.
pub fn shared_cache_stats() -> (u64, u64) {
    SHARED.with(|c| c.borrow().stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    fn fresh(name: &str, core: usize, seed: u64) -> SyntheticTrace {
        benchmark(name).unwrap().generator(core, seed)
    }

    #[test]
    fn replay_matches_fresh_generator_per_access() {
        let mut cache = TraceCache::default();
        let spec = benchmark("mcf").unwrap();
        let mut cached = cache.generator(&spec, 0, 9);
        let mut plain = fresh("mcf", 0, 9);
        for _ in 0..2048 {
            assert_eq!(cached.next_access(), plain.next_access());
        }
    }

    #[test]
    fn second_consumer_replays_without_resynthesis() {
        let mut cache = TraceCache::default();
        let spec = benchmark("lbm").unwrap();
        let mut first = cache.generator(&spec, 0, 3);
        let mut warm: Vec<Access> = Vec::new();
        let mut buf = [PLACEHOLDER; 300];
        first.fill_block(&mut buf);
        warm.extend_from_slice(&buf);
        let mut second = cache.generator(&spec, 0, 3);
        for &a in &warm {
            assert_eq!(second.next_access(), a);
        }
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn interleaved_cursors_share_one_recording() {
        let mut cache = TraceCache::default();
        let spec = benchmark("pr").unwrap();
        let mut a = cache.generator(&spec, 1, 5);
        let mut b = cache.generator(&spec, 1, 5);
        let mut plain = fresh("pr", 1, 5);
        // Drive the cursors out of phase with odd block sizes.
        let mut ref_stream: Vec<Access> = Vec::new();
        let ensure = |n: usize, plain: &mut SyntheticTrace, rs: &mut Vec<Access>| {
            while rs.len() < n {
                rs.push(plain.next_access());
            }
        };
        let mut pa = 0usize;
        let mut pb = 0usize;
        for (i, &sz) in [7usize, 1, 255, 257, 64, 13].iter().enumerate() {
            let mut buf = vec![PLACEHOLDER; sz];
            if i % 2 == 0 {
                a.fill_block(&mut buf);
                ensure(pa + sz, &mut plain, &mut ref_stream);
                assert_eq!(&buf[..], &ref_stream[pa..pa + sz]);
                pa += sz;
            } else {
                b.fill_block(&mut buf);
                ensure(pb + sz, &mut plain, &mut ref_stream);
                assert_eq!(&buf[..], &ref_stream[pb..pb + sz]);
                pb += sz;
            }
        }
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn foreign_groups_evicted_past_budget() {
        let mut cache = TraceCache::new(512);
        let lbm = benchmark("lbm").unwrap();
        let mcf = benchmark("mcf").unwrap();
        let mut g = cache.generator(&lbm, 0, 1);
        let mut buf = vec![PLACEHOLDER; 1024];
        g.fill_block(&mut buf);
        assert!(cache.buffered_accesses() >= 1024);
        // New group arrives over budget: lbm's recording is dropped.
        let _h = cache.generator(&mcf, 0, 1);
        assert!(cache.buffered_accesses() < 1024);
        // lbm must re-record (still byte-identical) on next request.
        let mut again = cache.generator(&lbm, 0, 1);
        let mut plain = fresh("lbm", 0, 1);
        for _ in 0..256 {
            assert_eq!(again.next_access(), plain.next_access());
        }
        assert_eq!(cache.stats(), (3, 0));
    }
}
