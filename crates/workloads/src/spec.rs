//! The benchmark catalog: per-benchmark presets approximating the LLC
//! behaviour of the SPEC CPU2017 and GAP workloads the paper evaluates.
//!
//! Each preset composes weighted [`Component`]s. The parameters place every
//! benchmark in its qualitative regime relative to the simulated hierarchy
//! (512 KB L2 = 8K lines, 2 MB LLC/core = 32K lines):
//!
//! * `lbm` — write-heavy pure stream, near-zero LLC hit rate (the paper's
//!   worst case for Mirage's latency adder).
//! * `mcf` — huge pointer chase plus a medium reused set: high MPKI, high
//!   dead-block fraction, big win from interference reduction.
//! * `cactuBSSN`, `cam4` — working sets that largely fit the LLC: *low*
//!   dead-block fraction, the workloads where Maya's smaller data store
//!   costs performance.
//! * GAP kernels (`bfs`, `cc`, `pr`, `sssp`, `bc`) — irregular chases over
//!   multi-megabyte graphs with small hot hub sets.
//!
//! Presets are approximations tuned against the experiment harness, not
//! fitted to the original traces (which require a 35 GB download).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::components::{Component, ComponentState};
use crate::{Access, TraceGenerator};

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2017 memory-intensive subset (LLC MPKI > 1).
    Spec,
    /// GAP graph-processing benchmarks.
    Gap,
    /// SPEC CPU2017 LLC-fitting benchmarks (MPKI < 0.5).
    SpecFitting,
}

/// A benchmark preset: weighted components plus traffic parameters.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// `(weight, component)` mixture.
    pub parts: Vec<(f64, Component)>,
    /// Fraction of memory accesses that are stores.
    pub write_fraction: f64,
    /// Memory operations per instruction (sets the gap between accesses).
    pub mem_ratio: f64,
}

impl BenchmarkSpec {
    /// Instantiates a deterministic trace generator for one core.
    ///
    /// Each core gets a disjoint 1 TB address region (`core << 40`), so
    /// homogeneous mixes model rate-mode runs (no sharing).
    pub fn generator(&self, core: usize, seed: u64) -> SyntheticTrace {
        let mut mix =
            0x9e3779b97f4a7c15u64.wrapping_mul(seed ^ (core as u64) << 32 ^ hash_name(self.name));
        mix ^= mix >> 29;
        let core_base = (core as u64) << 40;
        let states = self
            .parts
            .iter()
            .enumerate()
            .map(|(i, &(_, c))| {
                let base = core_base + ((i as u64 + 1) << 32);
                let pc_base = 0x40_0000 + ((i as u64) << 12) + hash_name(self.name) % 4096 * 64;
                ComponentState::new(c, base, mix.wrapping_add(i as u64), pc_base)
            })
            .collect();
        let total: f64 = self.parts.iter().map(|&(w, _)| w).sum();
        let cdf = self
            .parts
            .iter()
            .scan(0.0, |acc, &(w, _)| {
                *acc += w / total;
                Some(*acc)
            })
            .collect();
        let mean_gap = (1.0 / self.mem_ratio - 1.0).max(0.0);
        SyntheticTrace {
            name: self.name,
            states,
            cdf,
            write_fraction: self.write_fraction,
            mean_gap,
            rng: SmallRng::seed_from_u64(mix ^ 0x7ace),
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

/// A running trace generator (see [`BenchmarkSpec::generator`]).
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    name: &'static str,
    states: Vec<ComponentState>,
    cdf: Vec<f64>,
    write_fraction: f64,
    mean_gap: f64,
    rng: SmallRng,
}

impl SyntheticTrace {
    /// One access of the stream. The RNG draw order — mixture pick,
    /// component draw, gap jitter, write draw — is part of the trace
    /// contract: [`TraceGenerator::next_access`] and
    /// [`TraceGenerator::fill_block`] both funnel through this body, so
    /// the batched and per-access paths are the same stream by
    /// construction (and twin tests pin it).
    #[inline]
    fn gen_one(&mut self) -> Access {
        let u: f64 = self.rng.gen();
        let idx = self
            .cdf
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cdf.len() - 1);
        let (addr, pc, dependent) = self.states[idx].next();
        // Gap jitter of ±1 keeps cores from lock-stepping; rounding (not
        // truncation) preserves the configured memory intensity in
        // expectation.
        let gap = (self.mean_gap + self.rng.gen_range(-1.0..1.0))
            .max(0.0)
            .round() as u32;
        Access {
            addr,
            is_write: self.rng.gen_bool(self.write_fraction),
            pc,
            gap,
            dependent,
        }
    }
}

impl TraceGenerator for SyntheticTrace {
    fn next_access(&mut self) -> Access {
        self.gen_one()
    }

    fn fill_block(&mut self, out: &mut [Access]) {
        for slot in out.iter_mut() {
            *slot = self.gen_one();
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Looks up a benchmark preset by name.
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    use Component::{Phased, PointerChase, Scan, Stream, WorkingSet};
    const HUGE: u64 = 1 << 30; // streams never wrap within a run
    let spec = |suite, parts: Vec<(f64, Component)>, wf, mr| BenchmarkSpec {
        name: canonical_name(name),
        suite,
        parts,
        write_fraction: wf,
        mem_ratio: mr,
    };
    let s = match name {
        // --- SPEC CPU2017, memory-intensive ---
        "mcf" => spec(
            Suite::Spec,
            vec![
                (0.50, PointerChase { lines: 1_500_000 }),
                (
                    0.32,
                    WorkingSet {
                        lines: 24_000,
                        zipf: 0.9,
                    },
                ),
                (
                    0.18,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.18,
            0.36,
        ),
        // lbm streams through two grids (read A, write B) with almost zero
        // LLC load hit rate — the paper's worst case for the randomized
        // designs' extra lookup latency.
        "lbm" => spec(
            Suite::Spec,
            vec![
                (
                    0.55,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.45,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.45,
            0.38,
        ),
        "omnetpp" => spec(
            Suite::Spec,
            vec![
                (0.40, PointerChase { lines: 512_000 }),
                (
                    0.40,
                    WorkingSet {
                        lines: 30_000,
                        zipf: 0.8,
                    },
                ),
                (
                    0.20,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.25,
            0.33,
        ),
        "xalancbmk" => spec(
            Suite::Spec,
            vec![
                (
                    0.50,
                    WorkingSet {
                        lines: 48_000,
                        zipf: 1.0,
                    },
                ),
                (0.30, PointerChase { lines: 256_000 }),
                (
                    0.20,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.15,
            0.34,
        ),
        "bwaves" => spec(
            Suite::Spec,
            vec![
                (
                    0.60,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (0.30, Scan { lines: 40_000 }),
                (
                    0.10,
                    WorkingSet {
                        lines: 6_000,
                        zipf: 0.5,
                    },
                ),
            ],
            0.25,
            0.37,
        ),
        "cactuBSSN" => spec(
            Suite::Spec,
            vec![
                (
                    0.70,
                    Phased {
                        lines: 18_000,
                        epoch_accesses: 120_000,
                    },
                ),
                (0.22, Scan { lines: 10_000 }),
                (
                    0.08,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 2,
                    },
                ),
            ],
            0.30,
            0.33,
        ),
        "cam4" => spec(
            Suite::Spec,
            vec![
                (
                    0.72,
                    Phased {
                        lines: 20_000,
                        epoch_accesses: 150_000,
                    },
                ),
                (0.18, Scan { lines: 8_000 }),
                (
                    0.10,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.28,
            0.31,
        ),
        "wrf" => spec(
            Suite::Spec,
            vec![
                (0.42, Scan { lines: 22_000 }),
                (
                    0.30,
                    WorkingSet {
                        lines: 14_000,
                        zipf: 0.6,
                    },
                ),
                (
                    0.28,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.30,
            0.34,
        ),
        "fotonik3d" => spec(
            Suite::Spec,
            vec![
                (0.48, Scan { lines: 20_000 }),
                (
                    0.37,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.15,
                    WorkingSet {
                        lines: 8_000,
                        zipf: 0.4,
                    },
                ),
            ],
            0.32,
            0.36,
        ),
        "roms" => spec(
            Suite::Spec,
            vec![
                (
                    0.50,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (0.30, Scan { lines: 24_000 }),
                (
                    0.20,
                    WorkingSet {
                        lines: 8_000,
                        zipf: 0.4,
                    },
                ),
            ],
            0.33,
            0.35,
        ),
        "pop2" => spec(
            Suite::Spec,
            vec![
                (
                    0.40,
                    WorkingSet {
                        lines: 20_000,
                        zipf: 0.6,
                    },
                ),
                (
                    0.38,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (0.22, PointerChase { lines: 64_000 }),
            ],
            0.28,
            0.32,
        ),
        "gcc" => spec(
            Suite::Spec,
            vec![
                (
                    0.58,
                    WorkingSet {
                        lines: 12_000,
                        zipf: 1.1,
                    },
                ),
                (
                    0.25,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (0.17, PointerChase { lines: 20_000 }),
            ],
            0.22,
            0.30,
        ),
        "perlbench" => spec(
            Suite::Spec,
            vec![
                (
                    0.70,
                    WorkingSet {
                        lines: 9_000,
                        zipf: 1.2,
                    },
                ),
                (
                    0.15,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (0.15, PointerChase { lines: 20_000 }),
            ],
            0.25,
            0.30,
        ),
        "x264" => spec(
            Suite::Spec,
            vec![
                (
                    0.42,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.43,
                    WorkingSet {
                        lines: 10_000,
                        zipf: 0.7,
                    },
                ),
                (0.15, Scan { lines: 8_000 }),
            ],
            0.30,
            0.31,
        ),
        "xz" => spec(
            Suite::Spec,
            vec![
                (0.42, PointerChase { lines: 128_000 }),
                (
                    0.38,
                    WorkingSet {
                        lines: 16_000,
                        zipf: 0.8,
                    },
                ),
                (
                    0.20,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.28,
            0.33,
        ),
        // --- GAP graph kernels ---
        "bfs" => spec(
            Suite::Gap,
            vec![
                (0.58, PointerChase { lines: 1_000_000 }),
                (
                    0.27,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.15,
                    WorkingSet {
                        lines: 16_000,
                        zipf: 1.3,
                    },
                ),
            ],
            0.15,
            0.38,
        ),
        "cc" => spec(
            Suite::Gap,
            vec![
                (0.68, PointerChase { lines: 1_000_000 }),
                (
                    0.22,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.10,
                    WorkingSet {
                        lines: 8_000,
                        zipf: 1.1,
                    },
                ),
            ],
            0.18,
            0.38,
        ),
        "pr" => spec(
            Suite::Gap,
            vec![
                (
                    0.42,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (0.36, PointerChase { lines: 768_000 }),
                (
                    0.22,
                    WorkingSet {
                        lines: 32_000,
                        zipf: 1.1,
                    },
                ),
            ],
            0.22,
            0.40,
        ),
        "sssp" => spec(
            Suite::Gap,
            vec![
                (0.62, PointerChase { lines: 1_000_000 }),
                (
                    0.18,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.20,
                    WorkingSet {
                        lines: 16_000,
                        zipf: 1.0,
                    },
                ),
            ],
            0.20,
            0.39,
        ),
        "bc" => spec(
            Suite::Gap,
            vec![
                (0.58, PointerChase { lines: 768_000 }),
                (
                    0.26,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
                (
                    0.16,
                    WorkingSet {
                        lines: 16_000,
                        zipf: 1.0,
                    },
                ),
            ],
            0.20,
            0.38,
        ),
        // --- SPEC CPU2017, LLC-fitting (MPKI < 0.5) ---
        "leela" => spec(
            Suite::SpecFitting,
            vec![
                (
                    0.90,
                    WorkingSet {
                        lines: 4_000,
                        zipf: 0.8,
                    },
                ),
                (
                    0.10,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.20,
            0.28,
        ),
        "deepsjeng" => spec(
            Suite::SpecFitting,
            vec![
                (
                    0.88,
                    WorkingSet {
                        lines: 6_000,
                        zipf: 0.7,
                    },
                ),
                (
                    0.12,
                    Stream {
                        region_lines: HUGE,
                        stride_lines: 1,
                    },
                ),
            ],
            0.22,
            0.28,
        ),
        "exchange2" => spec(
            Suite::SpecFitting,
            vec![(
                1.0,
                WorkingSet {
                    lines: 2_000,
                    zipf: 0.6,
                },
            )],
            0.25,
            0.26,
        ),
        _ => return None,
    };
    Some(s)
}

fn canonical_name(name: &str) -> &'static str {
    ALL_NAMES
        .iter()
        .chain(FITTING_NAMES.iter())
        .find(|&&n| n == name)
        .copied()
        .expect("canonical_name only called for known benchmarks")
}

/// The 15 SPEC + 5 GAP memory-intensive benchmarks of Figures 1 and 9.
pub const ALL_NAMES: [&str; 20] = [
    "perlbench",
    "gcc",
    "bwaves",
    "mcf",
    "cactuBSSN",
    "lbm",
    "omnetpp",
    "wrf",
    "xalancbmk",
    "x264",
    "fotonik3d",
    "roms",
    "pop2",
    "cam4",
    "xz", // SPEC
    "bfs",
    "cc",
    "pr",
    "sssp",
    "bc", // GAP
];

/// SPEC-suite subset of [`ALL_NAMES`].
pub const SPEC_NAMES: [&str; 15] = [
    "perlbench",
    "gcc",
    "bwaves",
    "mcf",
    "cactuBSSN",
    "lbm",
    "omnetpp",
    "wrf",
    "xalancbmk",
    "x264",
    "fotonik3d",
    "roms",
    "pop2",
    "cam4",
    "xz",
];

/// GAP-suite subset of [`ALL_NAMES`].
pub const GAP_NAMES: [&str; 5] = ["bfs", "cc", "pr", "sssp", "bc"];

/// LLC-fitting benchmarks used for the "Performance of LLC fitting
/// benchmarks" study.
pub const FITTING_NAMES: [&str; 3] = ["leela", "deepsjeng", "exchange2"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_resolves() {
        for n in ALL_NAMES.iter().chain(FITTING_NAMES.iter()) {
            let s = benchmark(n).unwrap_or_else(|| panic!("missing preset for {n}"));
            assert_eq!(s.name, *n);
            assert!(!s.parts.is_empty());
            let w: f64 = s.parts.iter().map(|p| p.0).sum();
            assert!(w > 0.0);
            assert!(s.write_fraction >= 0.0 && s.write_fraction < 1.0);
            assert!(s.mem_ratio > 0.0 && s.mem_ratio < 1.0);
        }
    }

    #[test]
    fn unknown_names_return_none() {
        assert!(benchmark("notabench").is_none());
    }

    #[test]
    fn lbm_is_stream_dominated() {
        let s = benchmark("lbm").unwrap();
        let stream_w: f64 = s
            .parts
            .iter()
            .filter(|(_, c)| matches!(c, Component::Stream { .. }))
            .map(|p| p.0)
            .sum();
        assert!(stream_w > 0.8);
        assert!(s.write_fraction > 0.4, "lbm is write-heavy");
    }

    #[test]
    fn suites_partition_correctly() {
        for n in SPEC_NAMES {
            assert_eq!(benchmark(n).unwrap().suite, Suite::Spec);
        }
        for n in GAP_NAMES {
            assert_eq!(benchmark(n).unwrap().suite, Suite::Gap);
        }
        for n in FITTING_NAMES {
            assert_eq!(benchmark(n).unwrap().suite, Suite::SpecFitting);
        }
    }

    #[test]
    fn generator_respects_write_fraction_roughly() {
        let mut g = benchmark("lbm").unwrap().generator(0, 1);
        let writes = (0..20_000).filter(|_| g.next_access().is_write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.45).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn generator_gap_tracks_mem_ratio() {
        let spec = benchmark("mcf").unwrap();
        let mut g = spec.generator(0, 1);
        let n = 20_000;
        let total_instr: u64 = (0..n).map(|_| u64::from(g.next_access().gap) + 1).sum();
        let measured_ratio = n as f64 / total_instr as f64;
        assert!(
            (measured_ratio - spec.mem_ratio).abs() < 0.08,
            "mem ratio {measured_ratio} vs {}",
            spec.mem_ratio
        );
    }
}
