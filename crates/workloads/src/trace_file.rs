//! Binary trace files: persist synthetic traces and replay them, the way
//! the paper's artifact replays ChampSim traces.
//!
//! The format is deliberately simple and self-describing:
//!
//! ```text
//! [8 bytes]  magic "MAYATRC1"
//! [8 bytes]  record count (little-endian u64)
//! repeated records, 16 bytes each:
//!   [8 bytes] byte address (LE u64)
//!   [8 bytes] packed metadata (LE u64):
//!             bits 0..48  pc
//!             bits 48..60 gap (instructions before this access, 0..4095)
//!             bit  60     is_write
//!             bit  61     dependent
//! ```
//!
//! Replay wraps around at the end, so a finite file still provides the
//! infinite stream the simulator expects (document the wrap in experiment
//! setups — steady-state statistics are insensitive to it).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read as _, Write as _};
use std::path::Path;

use crate::{Access, TraceGenerator};

const MAGIC: &[u8; 8] = b"MAYATRC1";
const PC_MASK: u64 = (1 << 48) - 1;
const GAP_MAX: u32 = (1 << 12) - 1;

fn pack(a: &Access) -> [u8; 16] {
    let meta = (a.pc & PC_MASK)
        | (u64::from(a.gap.min(GAP_MAX)) << 48)
        | (u64::from(a.is_write) << 60)
        | (u64::from(a.dependent) << 61);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.addr.to_le_bytes());
    out[8..].copy_from_slice(&meta.to_le_bytes());
    out
}

fn unpack(buf: &[u8; 16]) -> Access {
    let addr = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    let meta = u64::from_le_bytes(buf[8..].try_into().expect("8 bytes"));
    Access {
        addr,
        pc: meta & PC_MASK,
        gap: ((meta >> 48) & u64::from(GAP_MAX)) as u32,
        is_write: (meta >> 60) & 1 == 1,
        dependent: (meta >> 61) & 1 == 1,
    }
}

/// Writes `count` accesses from `gen` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_trace(path: &Path, gen: &mut dyn TraceGenerator, count: u64) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&count.to_le_bytes())?;
    for _ in 0..count {
        w.write_all(&pack(&gen.next_access()))?;
    }
    w.flush()
}

/// A trace file loaded into memory, replayed as an infinite (wrapping)
/// access stream.
#[derive(Debug, Clone)]
pub struct TraceFile {
    name: String,
    records: Vec<Access>,
    cursor: usize,
}

impl TraceFile {
    /// Loads a trace file.
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures, a bad magic value, or a
    /// truncated file.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a MAYATRC1 trace",
            ));
        }
        let mut count_buf = [0u8; 8];
        r.read_exact(&mut count_buf)?;
        let count = u64::from_le_bytes(count_buf);
        if count == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        let mut records = Vec::with_capacity(count as usize);
        let mut rec = [0u8; 16];
        for _ in 0..count {
            r.read_exact(&mut rec)?;
            records.push(unpack(&rec));
        }
        Ok(Self {
            name: path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default(),
            records,
            cursor: 0,
        })
    }

    /// Number of records in the file.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false: empty traces are rejected at open.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceGenerator for TraceFile {
    fn next_access(&mut self) -> Access {
        let a = self.records[self.cursor];
        self.cursor = (self.cursor + 1) % self.records.len();
        a
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("maya_trace_test_{tag}_{}.trc", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let path = temp_path("roundtrip");
        let mut gen = benchmark("mcf").expect("known").generator(0, 42);
        write_trace(&path, &mut gen, 5_000).expect("write");
        let mut replay = TraceFile::open(&path).expect("open");
        let mut reference = benchmark("mcf").expect("known").generator(0, 42);
        for _ in 0..5_000 {
            let (a, b) = (reference.next_access(), replay.next_access());
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.pc & PC_MASK, b.pc);
            assert_eq!(a.is_write, b.is_write);
            assert_eq!(a.dependent, b.dependent);
            assert_eq!(a.gap.min(GAP_MAX), b.gap);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_wraps_at_the_end() {
        let path = temp_path("wrap");
        let mut gen = benchmark("lbm").expect("known").generator(0, 1);
        write_trace(&path, &mut gen, 10).expect("write");
        let mut replay = TraceFile::open(&path).expect("open");
        let first: Vec<Access> = (0..10).map(|_| replay.next_access()).collect();
        let second: Vec<Access> = (0..10).map(|_| replay.next_access()).collect();
        assert_eq!(first, second, "wrap must replay identically");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"NOTATRACEFILE___").expect("write");
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pack_unpack_inverse_on_edge_values() {
        let a = Access {
            addr: u64::MAX,
            pc: PC_MASK,
            gap: GAP_MAX,
            is_write: true,
            dependent: true,
        };
        assert_eq!(unpack(&pack(&a)), a);
        let b = Access {
            addr: 0,
            pc: 0,
            gap: 0,
            is_write: false,
            dependent: false,
        };
        assert_eq!(unpack(&pack(&b)), b);
    }
}
