//! Synthetic memory-trace generators standing in for the SPEC CPU2017 and
//! GAP ChampSim traces used by the paper.
//!
//! # Why synthetic traces are a faithful substitute
//!
//! The paper's phenomena are steady-state LLC statistics: dead-block
//! fractions (Figure 1), reuse-filtering benefit, inter-core interference,
//! and MPKI (Table VII). Those are determined by a workload's *reuse-distance
//! and footprint profile* — how big the working sets are relative to the L2
//! and LLC, how much of the traffic is streaming versus reused, how much is
//! written — not by the exact instruction stream. Each benchmark preset in
//! [`spec`] composes four archetypal access [`components`] (streaming scans,
//! cached working sets, pointer chases, repeated long scans) with weights
//! chosen to land the benchmark in the right regime (e.g. `lbm` is a pure
//! write-heavy stream with near-zero LLC hit rate; `mcf` is a huge pointer
//! chase with a medium reused set; `cam4` mostly fits in the LLC).
//!
//! Every generator is an infinite, deterministic iterator of [`Access`]
//! records, seeded per `(benchmark, core)`, so "alone" and "shared" runs of
//! the weighted-speedup methodology observe identical streams.
//!
//! # Examples
//!
//! ```
//! use workloads::{spec::benchmark, TraceGenerator};
//!
//! let mut gen = benchmark("mcf").expect("known benchmark").generator(0, 42);
//! let a = gen.next_access();
//! assert_eq!(a.addr % 1, 0); // addresses are byte addresses
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod components;
pub mod mixes;
pub mod spec;
pub mod trace_file;

/// One memory access produced by a trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// True for a store.
    pub is_write: bool,
    /// Program counter of the instruction (drives prefetcher training).
    pub pc: u64,
    /// Number of non-memory instructions preceding this access.
    pub gap: u32,
    /// True when this access depends on the previous load's value
    /// (pointer chasing): the core cannot issue it until that load
    /// completes, which serializes misses and makes LLC latency visible.
    pub dependent: bool,
}

impl Access {
    /// The 64-byte-line address.
    pub fn line(&self) -> u64 {
        self.addr >> 6
    }
}

/// An infinite, deterministic stream of memory accesses.
///
/// This is a sealed-style concrete trait rather than `Iterator` because the
/// stream never ends and the simulator pulls exactly as many accesses as the
/// instruction budget requires.
pub trait TraceGenerator {
    /// Produces the next access.
    fn next_access(&mut self) -> Access;

    /// Fills `out` with the next `out.len()` accesses of the stream.
    ///
    /// Semantically identical to calling [`next_access`] `out.len()` times
    /// (the default implementation does exactly that, and twin tests pin
    /// every override to it); the batched form exists so the simulator can
    /// pull a whole block through one virtual call into a reusable caller
    /// buffer instead of paying a dynamic dispatch per memory reference.
    ///
    /// [`next_access`]: TraceGenerator::next_access
    fn fill_block(&mut self, out: &mut [Access]) {
        for slot in out.iter_mut() {
            *slot = self.next_access();
        }
    }

    /// Short name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    #[test]
    fn line_strips_offset_bits() {
        let a = Access {
            addr: 0x1234,
            is_write: false,
            pc: 0,
            gap: 0,
            dependent: false,
        };
        assert_eq!(a.line(), 0x1234 >> 6);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = benchmark("mcf").unwrap().generator(0, 7);
        let mut b = benchmark("mcf").unwrap().generator(0, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_cores_use_disjoint_address_spaces() {
        let mut a = benchmark("lbm").unwrap().generator(0, 7);
        let mut b = benchmark("lbm").unwrap().generator(1, 7);
        for _ in 0..1000 {
            let (x, y) = (a.next_access(), b.next_access());
            assert_ne!(x.addr >> 40, y.addr >> 40, "cores must not share pages");
        }
    }
}
