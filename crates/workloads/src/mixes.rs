//! Multi-core workload mixes: homogeneous rate mixes (Figure 9) and the 21
//! heterogeneous mixes of Table VI (Figure 10).

use crate::spec::{benchmark, BenchmarkSpec};

/// MPKI bin of a heterogeneous mix (Table VI's last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpkiBin {
    /// Low-MPKI mixes (M1–M7).
    Low,
    /// Medium-MPKI mixes (M8–M14).
    Medium,
    /// High-MPKI mixes (M15–M21).
    High,
}

impl std::fmt::Display for MpkiBin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MpkiBin::Low => "LOW",
            MpkiBin::Medium => "MEDIUM",
            MpkiBin::High => "HIGH",
        })
    }
}

/// A named multi-core mix: one benchmark preset per core.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix name (`mcf-rate`, `M7`, ...).
    pub name: String,
    /// Per-core benchmark specs; `specs.len()` is the core count.
    pub specs: Vec<BenchmarkSpec>,
    /// MPKI bin for heterogeneous mixes, `None` for homogeneous ones.
    pub bin: Option<MpkiBin>,
}

/// Builds a homogeneous rate mix: `cores` copies of one benchmark.
///
/// # Panics
///
/// Panics if the benchmark name is unknown.
pub fn homogeneous(name: &str, cores: usize) -> Mix {
    let spec = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    Mix {
        name: format!("{name}-rate"),
        specs: vec![spec; cores],
        bin: None,
    }
}

/// The 21 heterogeneous 8-core mixes of Table VI, in order M1..M21.
pub fn hetero_mixes() -> Vec<Mix> {
    fn m(name: &str, bin: MpkiBin, comp: &[(&str, usize)]) -> Mix {
        let mut specs = Vec::with_capacity(8);
        for &(b, n) in comp {
            let s = benchmark(b).unwrap_or_else(|| panic!("unknown benchmark {b}"));
            specs.extend(std::iter::repeat_n(s, n));
        }
        assert_eq!(specs.len(), 8, "mix {name} must have 8 cores");
        Mix {
            name: name.to_string(),
            specs,
            bin: Some(bin),
        }
    }
    use MpkiBin::{High, Low, Medium};
    vec![
        m(
            "M1",
            Low,
            &[
                ("cactuBSSN", 2),
                ("wrf", 1),
                ("xalancbmk", 1),
                ("pop2", 1),
                ("roms", 1),
                ("xz", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M2",
            Low,
            &[
                ("bwaves", 1),
                ("mcf", 1),
                ("cactuBSSN", 1),
                ("wrf", 1),
                ("xalancbmk", 1),
                ("xz", 1),
                ("bfs", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M3",
            Low,
            &[
                ("mcf", 1),
                ("cactuBSSN", 1),
                ("omnetpp", 1),
                ("xalancbmk", 1),
                ("roms", 1),
                ("bfs", 1),
                ("cc", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M4",
            Low,
            &[
                ("perlbench", 1),
                ("bwaves", 1),
                ("mcf", 3),
                ("cam4", 1),
                ("xz", 1),
                ("bc", 1),
            ],
        ),
        m(
            "M5",
            Low,
            &[
                ("perlbench", 1),
                ("mcf", 2),
                ("cactuBSSN", 1),
                ("roms", 1),
                ("xz", 1),
                ("bc", 1),
                ("pr", 1),
            ],
        ),
        m(
            "M6",
            Low,
            &[
                ("gcc", 1),
                ("mcf", 2),
                ("cactuBSSN", 1),
                ("lbm", 2),
                ("fotonik3d", 1),
                ("roms", 1),
            ],
        ),
        m(
            "M7",
            Low,
            &[
                ("bwaves", 1),
                ("mcf", 1),
                ("cactuBSSN", 1),
                ("pop2", 1),
                ("xz", 1),
                ("bc", 2),
                ("sssp", 1),
            ],
        ),
        m(
            "M8",
            Medium,
            &[
                ("gcc", 2),
                ("bwaves", 1),
                ("x264", 1),
                ("bc", 1),
                ("cc", 1),
                ("pr", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M9",
            Medium,
            &[
                ("gcc", 1),
                ("cactuBSSN", 1),
                ("lbm", 1),
                ("xalancbmk", 1),
                ("x264", 1),
                ("cam4", 1),
                ("pr", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M10",
            Medium,
            &[
                ("mcf", 3),
                ("lbm", 1),
                ("wrf", 1),
                ("fotonik3d", 2),
                ("sssp", 1),
            ],
        ),
        m(
            "M11",
            Medium,
            &[
                ("mcf", 3),
                ("lbm", 1),
                ("omnetpp", 1),
                ("pop2", 1),
                ("roms", 1),
                ("cc", 1),
            ],
        ),
        m(
            "M12",
            Medium,
            &[
                ("mcf", 2),
                ("cactuBSSN", 1),
                ("fotonik3d", 1),
                ("roms", 2),
                ("cc", 1),
                ("pr", 1),
            ],
        ),
        m(
            "M13",
            Medium,
            &[
                ("bwaves", 1),
                ("mcf", 1),
                ("xalancbmk", 1),
                ("fotonik3d", 1),
                ("roms", 2),
                ("bc", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M14",
            Medium,
            &[
                ("mcf", 1),
                ("lbm", 1),
                ("xalancbmk", 1),
                ("roms", 1),
                ("bc", 1),
                ("cc", 1),
                ("sssp", 2),
            ],
        ),
        m(
            "M15",
            High,
            &[
                ("bwaves", 1),
                ("cactuBSSN", 1),
                ("lbm", 1),
                ("roms", 2),
                ("bfs", 1),
                ("pr", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M16",
            High,
            &[
                ("mcf", 3),
                ("cactuBSSN", 1),
                ("lbm", 1),
                ("bfs", 2),
                ("cc", 1),
            ],
        ),
        m(
            "M17",
            High,
            &[
                ("mcf", 1),
                ("cactuBSSN", 1),
                ("wrf", 1),
                ("xalancbmk", 1),
                ("x264", 1),
                ("bc", 1),
                ("pr", 2),
            ],
        ),
        m(
            "M18",
            High,
            &[
                ("omnetpp", 1),
                ("wrf", 1),
                ("fotonik3d", 1),
                ("roms", 1),
                ("bc", 2),
                ("cc", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M19",
            High,
            &[
                ("bwaves", 1),
                ("mcf", 2),
                ("cactuBSSN", 1),
                ("xalancbmk", 1),
                ("bfs", 1),
                ("pr", 1),
                ("sssp", 1),
            ],
        ),
        m(
            "M20",
            High,
            &[
                ("perlbench", 1),
                ("mcf", 2),
                ("omnetpp", 1),
                ("fotonik3d", 1),
                ("pr", 1),
                ("sssp", 2),
            ],
        ),
        m(
            "M21",
            High,
            &[
                ("gcc", 1),
                ("bwaves", 1),
                ("mcf", 2),
                ("lbm", 1),
                ("bc", 1),
                ("pr", 2),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_21_hetero_mixes_of_8_cores_each() {
        let mixes = hetero_mixes();
        assert_eq!(mixes.len(), 21);
        for (i, m) in mixes.iter().enumerate() {
            assert_eq!(m.name, format!("M{}", i + 1));
            assert_eq!(m.specs.len(), 8);
        }
    }

    #[test]
    fn bins_split_seven_seven_seven() {
        let mixes = hetero_mixes();
        let count = |b| mixes.iter().filter(|m| m.bin == Some(b)).count();
        assert_eq!(count(MpkiBin::Low), 7);
        assert_eq!(count(MpkiBin::Medium), 7);
        assert_eq!(count(MpkiBin::High), 7);
    }

    #[test]
    fn homogeneous_replicates_one_spec() {
        let m = homogeneous("lbm", 8);
        assert_eq!(m.specs.len(), 8);
        assert!(m.specs.iter().all(|s| s.name == "lbm"));
        assert_eq!(m.bin, None);
        assert_eq!(m.name, "lbm-rate");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_homogeneous_name_panics() {
        homogeneous("nope", 8);
    }
}
