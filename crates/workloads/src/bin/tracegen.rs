//! `tracegen`: writes a synthetic benchmark trace to a binary file.
//!
//! ```text
//! tracegen <benchmark> <count> <output.trc> [--core N] [--seed S] [--list]
//! ```

use std::path::PathBuf;
use std::process::exit;

use workloads::spec::{benchmark, ALL_NAMES, FITTING_NAMES};
use workloads::trace_file::write_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("available benchmarks:");
        for n in ALL_NAMES.iter().chain(FITTING_NAMES.iter()) {
            println!("  {n}");
        }
        return;
    }
    if args.len() < 3 {
        eprintln!("usage: tracegen <benchmark> <count> <output.trc> [--core N] [--seed S]");
        eprintln!("       tracegen --list");
        exit(2);
    }
    let name = &args[0];
    let count: u64 = args[1]
        .parse()
        .unwrap_or_else(|_| die("count must be an integer"));
    let path = PathBuf::from(&args[2]);
    let mut core = 0usize;
    let mut seed = 42u64;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--core" => {
                i += 1;
                core = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--core"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed"));
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let spec =
        benchmark(name).unwrap_or_else(|| die(&format!("unknown benchmark {name}; see --list")));
    let mut gen = spec.generator(core, seed);
    if let Err(e) = write_trace(&path, &mut gen, count) {
        die(&format!("writing {}: {e}", path.display()));
    }
    eprintln!(
        "wrote {count} records of {name} (core {core}, seed {seed}) to {}",
        path.display()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}
