//! The archetypal access-pattern components that benchmark presets compose.
//!
//! Each component owns a disjoint address region and produces line-granular
//! accesses within it. Four archetypes cover the behaviours that matter at
//! the LLC:
//!
//! * [`Component::Stream`] — a monotone scan over an effectively unbounded
//!   region: pure compulsory misses, 100% dead blocks (the `lbm` regime).
//! * [`Component::WorkingSet`] — Zipf- or uniform-distributed references to
//!   a fixed set of lines: temporal reuse whose hit level depends on how the
//!   set size compares to L2 and LLC capacities.
//! * [`Component::PointerChase`] — a pseudo-random dependent walk over a
//!   region (the `mcf`/graph regime): reuse exists but at distances that
//!   defeat small caches.
//! * [`Component::Scan`] — a repeated sequential pass over a fixed region:
//!   reuse at a distance equal to the region size (hits iff the cache holds
//!   the whole region; the `streaming-with-fit` regime).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Line size in bytes.
pub const LINE: u64 = 64;

/// One access-pattern archetype. All sizes are in cache lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// Monotone streaming scan with the given stride (in lines) over a
    /// region that wraps only after `region_lines`.
    Stream {
        /// Region size in lines; make it large enough never to wrap during
        /// a run (no reuse).
        region_lines: u64,
        /// Stride between consecutive accesses, in lines.
        stride_lines: u64,
    },
    /// Temporal reuse over a fixed set of lines.
    WorkingSet {
        /// Working-set size in lines.
        lines: u64,
        /// Zipf skew `s` (0.0 = uniform). Higher values concentrate
        /// references on a few hot lines.
        zipf: f64,
    },
    /// Pseudo-random dependent walk over a region.
    PointerChase {
        /// Region size in lines.
        lines: u64,
    },
    /// Repeated sequential scan over a fixed region.
    Scan {
        /// Region size in lines.
        lines: u64,
    },
    /// A phased working set: uniform reuse over a region that shifts to a
    /// fresh region every `epoch_accesses` accesses. Within an epoch lines
    /// are reused heavily; at the phase change the old region ages out of
    /// the cache *after* having been reused — the low-dead-block regime of
    /// `cactuBSSN`/`cam4` in Figure 1.
    Phased {
        /// Lines per epoch region.
        lines: u64,
        /// Accesses before the region shifts.
        epoch_accesses: u64,
    },
}

/// Runtime state for one component instance.
#[derive(Debug, Clone)]
pub(crate) struct ComponentState {
    component: Component,
    /// Base byte address of this component's region.
    base: u64,
    /// Stream/scan cursor or chase position (in lines).
    cursor: u64,
    /// Zipf inverse-CDF table (line index per quantile bucket), lazily
    /// built for skewed working sets.
    zipf_table: Vec<u32>,
    rng: SmallRng,
    pc_base: u64,
}

/// Number of quantile buckets used to approximate a Zipf distribution.
const ZIPF_BUCKETS: usize = 4096;

impl ComponentState {
    pub(crate) fn new(component: Component, base: u64, seed: u64, pc_base: u64) -> Self {
        let zipf_table = match component {
            Component::WorkingSet { lines, zipf } if zipf > 0.0 => build_zipf_table(lines, zipf),
            _ => Vec::new(),
        };
        Self {
            component,
            base,
            cursor: 0,
            zipf_table,
            rng: SmallRng::seed_from_u64(seed),
            pc_base,
        }
    }

    /// Next `(byte address, pc, dependent)` triple for this component.
    /// Pointer-chase accesses are value-dependent on the previous load.
    pub(crate) fn next(&mut self) -> (u64, u64, bool) {
        match self.component {
            Component::Stream {
                region_lines,
                stride_lines,
            } => {
                self.cursor = (self.cursor + stride_lines) % region_lines;
                (self.base + self.cursor * LINE, self.pc_base, false)
            }
            Component::WorkingSet { lines, zipf } => {
                let line = if zipf > 0.0 {
                    u64::from(self.zipf_table[self.rng.gen_range(0..self.zipf_table.len())])
                } else {
                    self.rng.gen_range(0..lines)
                };
                (self.base + line * LINE, self.pc_base + 8, false)
            }
            Component::PointerChase { lines } => {
                // A multiplicative-hash walk: deterministic, full-period-ish,
                // and unpredictable to a stride prefetcher — like chasing
                // pointers through a large arena.
                self.cursor = self
                    .cursor
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(self.rng.gen_range(1..lines))
                    % lines;
                (self.base + self.cursor * LINE, self.pc_base + 16, true)
            }
            Component::Scan { lines } => {
                self.cursor = (self.cursor + 1) % lines;
                (self.base + self.cursor * LINE, self.pc_base + 24, false)
            }
            Component::Phased {
                lines,
                epoch_accesses,
            } => {
                self.cursor += 1;
                // Cycle through 64 disjoint epoch regions.
                let region = (self.cursor / epoch_accesses) % 64;
                let line = region * lines + self.rng.gen_range(0..lines);
                (self.base + line * LINE, self.pc_base + 32, false)
            }
        }
    }
}

/// Builds the inverse-CDF quantile table for a Zipf(`s`) distribution over
/// `lines` ranks. Sampling a uniform bucket then indexing this table gives
/// approximately Zipf-distributed lines in O(1).
fn build_zipf_table(lines: u64, s: f64) -> Vec<u32> {
    let n = lines.min(1 << 22) as usize; // cap table inputs for memory safety
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut table = Vec::with_capacity(ZIPF_BUCKETS);
    let mut acc = 0.0;
    let mut k = 0usize;
    for b in 0..ZIPF_BUCKETS {
        let target = (b as f64 + 0.5) / ZIPF_BUCKETS as f64 * total;
        while acc + weights[k] < target && k + 1 < n {
            acc += weights[k];
            k += 1;
        }
        table.push(k as u32);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(c: Component) -> ComponentState {
        ComponentState::new(c, 0, 99, 0x400000)
    }

    #[test]
    fn stream_advances_by_stride_and_never_reuses_early() {
        let mut s = state(Component::Stream {
            region_lines: 1 << 30,
            stride_lines: 1,
        });
        let mut last = 0;
        for _ in 0..10_000 {
            let (addr, _, _) = s.next();
            assert!(addr > last, "stream must be monotone before wrap");
            last = addr;
        }
    }

    #[test]
    fn working_set_stays_in_bounds() {
        let lines = 128;
        let mut s = state(Component::WorkingSet { lines, zipf: 0.0 });
        for _ in 0..10_000 {
            let (addr, _, _) = s.next();
            assert!(addr / LINE < lines);
        }
    }

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let lines = 1024;
        let mut s = state(Component::WorkingSet { lines, zipf: 1.2 });
        let mut head = 0u64;
        let total = 20_000;
        for _ in 0..total {
            let (addr, _, _) = s.next();
            if addr / LINE < 32 {
                head += 1;
            }
        }
        // Under uniform sampling the head would get ~3%; Zipf(1.2) gives it
        // the majority.
        assert!(head > total / 2, "Zipf head mass too small: {head}/{total}");
    }

    #[test]
    fn pointer_chase_covers_its_region() {
        let lines = 256;
        let mut seen = vec![false; lines as usize];
        let mut s = state(Component::PointerChase { lines });
        for _ in 0..20_000 {
            let (addr, _, _) = s.next();
            seen[(addr / LINE) as usize] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(
            covered > 200,
            "chase must cover most of the region: {covered}/256"
        );
    }

    #[test]
    fn scan_revisits_with_period_equal_to_region() {
        let lines = 64;
        let mut s = state(Component::Scan { lines });
        let (first, _, _) = s.next();
        for _ in 1..lines {
            s.next();
        }
        let (wrapped, _, _) = s.next();
        assert_eq!(first, wrapped, "scan must wrap exactly at the region size");
    }

    #[test]
    fn components_use_distinct_pcs() {
        let mut a = state(Component::Stream {
            region_lines: 1024,
            stride_lines: 1,
        });
        let mut b = state(Component::Scan { lines: 1024 });
        assert_ne!(
            a.next().1,
            b.next().1,
            "distinct components need distinct PCs"
        );
    }
}
