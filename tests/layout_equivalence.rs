//! Layout-equivalence twin tests: the struct-of-arrays arena refactor (and
//! any future store-layout change) must be *bit-transparent*. These tests
//! pin the observable behaviour of every design in the catalog against
//! fixtures generated on the pre-refactor AoS layout and committed to the
//! repository:
//!
//! * the full access **transcript** (every `Response`: event, SAE flag,
//!   writeback lines, in order) under a mixed multi-domain workload with
//!   flushes and (for Maya/Mirage) re-keys,
//! * the full **obs event stream** the same run emits through a probe,
//! * the final `CacheStats`, held verbatim for debuggability,
//! * whole **sweep transcripts** (experiment text output) at `--jobs 1`
//!   and `--jobs 2`.
//!
//! The streams are compared via FNV-1a-64 over their exact bytes, so a
//! match here *is* byte-identity with the pre-refactor build. Regenerate
//! with `MAYA_UPDATE_FIXTURES=1 cargo test --test layout_equivalence`
//! (only legitimate when a behaviour change is intended and documented).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::PathBuf;

use maya_bench::designs::Design;
// lint:allow(arch/dep-graph) root-package twin test: pins sweep transcripts at --jobs 1 vs 2, which requires driving the scheduler directly
use maya_bench::sched::{self, RunOpts};
use maya_bench::Scale;
use maya_repro::maya_core::{
    CacheModel, DomainId, MayaCache, MayaConfig, MirageCache, MirageConfig, Request,
};
use maya_repro::maya_obs::{Event, Probe, ProbeHandle};

/// Baseline-equivalent capacity: small enough for debug runs, large enough
/// that the workload below forces evictions in every design.
const LINES: usize = 16 * 1024;
const SEED: u64 = 0x1a_0e5eed;
const ACCESSES: u64 = 24_000;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn updating() -> bool {
    std::env::var_os("MAYA_UPDATE_FIXTURES").is_some()
}

/// FNV-1a 64-bit over exact bytes: a match is byte-identity for our
/// purposes (the streams are megabytes; committing hashes keeps the
/// fixtures reviewable).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn line(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(b"\n");
    }
}

/// Probe that folds every event's exact rendering into a running hash.
struct HashingProbe {
    hash: Fnv,
    events: u64,
}

impl Probe for HashingProbe {
    fn record(&mut self, event: &Event) {
        self.hash.line(&format!("{event:?}"));
        self.events += 1;
    }
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// The deterministic mixed workload: random lines over a 1.5x-capacity
/// working set, a reuse stream (so Maya promotes), writebacks, prefetches,
/// four domains, occasional flushes, and one `flush_all` at mid-run.
/// Every response is folded into `transcript` in order.
fn drive(c: &mut dyn CacheModel, transcript: &mut Fnv) {
    let ws = 24 * 1024u64;
    let mut x = SEED;
    let mut recent = [0u64; 64];
    for i in 0..ACCESSES {
        x = lcg(x);
        let line = if i % 3 == 0 {
            recent[(x >> 32) as usize % 64]
        } else {
            let l = x % ws;
            recent[(i % 64) as usize] = l;
            l
        };
        let d = DomainId((i % 4) as u16);
        let req = match i % 11 {
            0 | 7 => Request::writeback(line, d),
            5 => Request::prefetch(line, d),
            _ => Request::read(line, d),
        };
        let r = c.access(req);
        let mut rec = format!("{i} {:?} sae={}", r.event, r.sae);
        for wb in r.writebacks.iter() {
            let _ = write!(rec, " wb={wb}");
        }
        transcript.line(&rec);
        if i % 997 == 0 {
            let flushed = c.flush_line(line, d);
            transcript.line(&format!("{i} flush_line={flushed}"));
        }
        if i == ACCESSES / 2 {
            c.flush_all();
            transcript.line(&format!("{i} flush_all"));
        }
    }
}

/// One fixture line for a cache instance: transcript hash, event-stream
/// hash, event count, final stats.
fn fingerprint(id: &str, c: &mut dyn CacheModel) -> String {
    let (handle, rc) = ProbeHandle::of(HashingProbe {
        hash: Fnv::new(),
        events: 0,
    });
    c.set_probe(handle);
    let mut transcript = Fnv::new();
    drive(c, &mut transcript);
    let p = rc.borrow();
    format!(
        "{id} transcript={:016x} events={:016x} n_events={} stats={:?}",
        transcript.0,
        p.hash.0,
        p.events,
        c.stats()
    )
}

/// Maya/Mirage re-key coverage: the same drive, split by a mid-run re-key
/// (the concrete-type API the trait does not expose).
fn rekey_fingerprint_maya() -> String {
    let mut c = MayaCache::new(MayaConfig::for_baseline_lines(LINES, SEED));
    let (handle, rc) = ProbeHandle::of(HashingProbe {
        hash: Fnv::new(),
        events: 0,
    });
    c.set_probe(handle);
    let mut t = Fnv::new();
    drive(&mut c, &mut t);
    c.rekey(SEED ^ 0xdead);
    drive(&mut c, &mut t);
    c.audit().expect("maya audit after rekey drive");
    let p = rc.borrow();
    format!(
        "maya+rekey transcript={:016x} events={:016x} n_events={} stats={:?}",
        t.0,
        p.hash.0,
        p.events,
        c.stats()
    )
}

fn rekey_fingerprint_mirage() -> String {
    let mut c = MirageCache::new(MirageConfig::for_data_entries(LINES, SEED));
    let (handle, rc) = ProbeHandle::of(HashingProbe {
        hash: Fnv::new(),
        events: 0,
    });
    c.set_probe(handle);
    let mut t = Fnv::new();
    drive(&mut c, &mut t);
    c.rekey(SEED ^ 0xbeef);
    drive(&mut c, &mut t);
    c.audit().expect("mirage audit after rekey drive");
    let p = rc.borrow();
    format!(
        "mirage+rekey transcript={:016x} events={:016x} n_events={} stats={:?}",
        t.0,
        p.hash.0,
        p.events,
        c.stats()
    )
}

fn compare_or_update(name: &str, produced: &str) {
    let path = fixture_path(name);
    if updating() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, produced).expect("write fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "fixture {} unreadable ({e}); generate with MAYA_UPDATE_FIXTURES=1",
            path.display()
        )
    });
    if committed != produced {
        // Diff line by line so the failing design is obvious.
        for (a, b) in committed.lines().zip(produced.lines()) {
            assert_eq!(a, b, "fixture {name} diverged on this line");
        }
        assert_eq!(
            committed.lines().count(),
            produced.lines().count(),
            "fixture {name}: line count changed"
        );
        panic!("fixture {name} diverged (whitespace only?)");
    }
}

/// Every design's transcript, event stream, and final stats are
/// byte-identical to the committed pre-refactor fixtures.
#[test]
fn designs_match_committed_fixtures() {
    let mut out = String::new();
    for d in Design::all() {
        let mut c = d.build(LINES, SEED);
        let line = fingerprint(&d.id(), c.as_mut());
        c.audit()
            .unwrap_or_else(|e| panic!("{}: audit after drive: {e}", d.id()));
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&rekey_fingerprint_maya());
    out.push('\n');
    out.push_str(&rekey_fingerprint_mirage());
    out.push('\n');
    compare_or_update("layout_equivalence.txt", &out);
}

/// Whole sweep transcripts (experiment text output, which embeds the full
/// simulator stack: cores, prefetcher, MSHRs, LLC, DRAM) reproduce the
/// committed fixtures at `--jobs 1` and `--jobs 2` alike.
#[test]
fn sweep_transcripts_match_committed_fixtures() {
    let scale = Scale {
        warmup: 2_000,
        measure: 6_000,
        mc_iterations: 20_000,
        attack_trials: 3,
    };
    for id in ["llcfit", "fig6", "demo-flush"] {
        let sweep = maya_bench::experiments::sweep(id, scale)
            .unwrap_or_else(|| panic!("unknown experiment {id}"));
        let (serial, _) = sched::execute(sweep, &RunOpts::serial());
        let sweep = maya_bench::experiments::sweep(id, scale).expect("same id");
        let (parallel, _) = sched::execute(sweep, &RunOpts::parallel(2));
        assert_eq!(serial, parallel, "{id}: jobs-2 must reproduce jobs-1");
        compare_or_update(&format!("sweep_{id}.txt"), &serial);
    }
}
