//! Cross-crate integration tests: the full stack (workloads → simulator →
//! cache models) reproduces the paper's qualitative claims end to end.

use maya_repro::champsim_lite::{System, SystemConfig};
use maya_repro::maya_core::{
    CacheModel, MayaCache, MayaConfig, MirageCache, MirageConfig, Policy, SetAssocCache,
    SetAssocConfig,
};
use maya_repro::workloads::mixes::homogeneous;

fn cfg(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        ..SystemConfig::eight_core_default().with_instructions(150_000, 450_000)
    }
}

fn baseline(lines: usize) -> Box<dyn CacheModel> {
    Box::new(SetAssocCache::new(SetAssocConfig::new(
        lines / 16,
        16,
        Policy::Drrip,
    )))
}

fn maya(lines: usize) -> Box<dyn CacheModel> {
    Box::new(MayaCache::new(MayaConfig::for_baseline_lines(lines, 7)))
}

fn mirage(lines: usize) -> Box<dyn CacheModel> {
    Box::new(MirageCache::new(MirageConfig::for_data_entries(lines, 7)))
}

/// The headline security claim, end to end: across every design point we
/// simulate, the secure designs record zero set-associative evictions.
#[test]
fn no_saes_across_full_simulations() {
    for name in ["mcf", "lbm", "bfs"] {
        let mix = homogeneous(name, 2);
        let lines = 2 * 32 * 1024;
        for llc in [maya(lines), mirage(lines)] {
            let design = llc.name();
            let r = System::new(cfg(2), llc, &mix, 1).run();
            assert_eq!(r.llc.saes, 0, "{design} recorded an SAE under {name}");
        }
    }
}

/// Figure 1's claim: streaming workloads leave the overwhelming majority of
/// LLC data-store fills dead, on both the baseline and Mirage.
#[test]
fn streaming_dead_blocks_dominate() {
    let mix = homogeneous("lbm", 1);
    let lines = 32 * 1024;
    for llc in [baseline(lines), mirage(lines)] {
        let design = llc.name();
        let r = System::new(cfg(1), llc, &mix, 1).run();
        let dead = r.dead_block_fraction().unwrap_or(0.0);
        assert!(dead > 0.9, "{design}: lbm dead fraction {dead}");
    }
}

/// Maya's core mechanism at system scale: under a streaming workload the
/// data store holds almost nothing, because streams never earn promotion.
#[test]
fn maya_data_store_filters_streams() {
    let mix = homogeneous("lbm", 1);
    let lines = 32 * 1024;
    let llc = Box::new(MayaCache::new(MayaConfig::for_baseline_lines(lines, 7)));
    let mut sys = System::new(cfg(1), llc, &mix, 1);
    let r = sys.run();
    // lbm writes ~45% of its stream: writebacks do install priority-1
    // entries, but the demand-read stream must not.
    let maya_fills = r.llc.data_fills;
    let mix_b = homogeneous("lbm", 1);
    let rb = System::new(cfg(1), baseline(lines), &mix_b, 1).run();
    assert!(
        maya_fills < rb.llc.data_fills / 2,
        "Maya must fill far less data than the baseline: {maya_fills} vs {}",
        rb.llc.data_fills
    );
}

/// Weighted-speedup plumbing: Maya lands within a few percent of the
/// baseline on a reuse-friendly workload, despite its smaller data store
/// and extra lookup latency.
#[test]
fn maya_tracks_baseline_on_reuse_friendly_workload() {
    let mix = homogeneous("xalancbmk", 2);
    let lines = 2 * 32 * 1024;
    let rb = System::new(cfg(2), baseline(lines), &mix, 1).run();
    let rm = System::new(cfg(2), maya(lines), &mix, 1).run();
    let ratio = rm.ipc_sum() / rb.ipc_sum();
    assert!(
        (0.85..=1.25).contains(&ratio),
        "Maya/baseline IPC ratio {ratio} out of plausible band"
    );
}

/// The MPKI bookkeeping matches between the simulator's demand counters
/// and the cache's own statistics.
#[test]
fn simulator_and_cache_counters_agree() {
    let mix = homogeneous("mcf", 1);
    let lines = 32 * 1024;
    let llc = baseline(lines);
    let mut sys = System::new(cfg(1), llc, &mix, 1);
    let r = sys.run();
    let demand_total: u64 = r.cores.iter().map(|c| c.llc_demand_accesses).sum();
    // The cache sees demand reads plus prefetch reads plus writebacks, so
    // its read counter must dominate the simulator's demand counter.
    assert!(r.llc.reads >= demand_total);
    assert!(r.cores[0].llc_demand_misses <= r.cores[0].llc_demand_accesses);
    assert!(r.cores[0].l2_misses >= r.cores[0].llc_demand_accesses);
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mix = homogeneous("omnetpp", 2);
        let lines = 2 * 32 * 1024;
        System::new(cfg(2), maya(lines), &mix, 99).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cores[0], b.cores[0]);
    assert_eq!(a.cores[1], b.cores[1]);
    assert_eq!(a.llc, b.llc);
}
