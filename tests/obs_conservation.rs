//! Conservation laws for the observability layer: the event stream a
//! [`MetricsProbe`] accumulates must reconcile *exactly* with every
//! design's own `CacheStats` and with the cache's resident population —
//! for every design in the catalog, under a long mixed workload with
//! eviction pressure, flushes, and multiple domains.
//!
//! The laws pinned here are what make the metrics trustworthy: a counter
//! that drifts from the model's own accounting would silently corrupt
//! every experiment sidecar.

use std::cell::RefCell;
use std::rc::Rc;

use maya_bench::designs::Design;
use maya_repro::champsim_lite::{System, SystemConfig};
use maya_repro::maya_core::{
    CacheModel, DomainId, MayaCache, MayaConfig, MirageCache, MirageConfig, Request,
};
use maya_repro::maya_obs::{MetricsProbe, NopProbe, ProbeHandle, ProfileHandle, SpanProfiler};
use maya_repro::workloads::mixes::homogeneous;

/// Baseline-equivalent capacity: 1 MB (16K lines), small enough for debug
/// runs, large enough that the mixed workload below forces evictions.
const LINES: usize = 16 * 1024;
const SEED: u64 = 0x0b5e_7ab1e;
const ACCESSES: u64 = 30_000;

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// A deterministic mixed workload: random lines over a 1.5x-capacity
/// working set, a reuse stream (every third access re-touches a recent
/// line, so Maya promotes), writebacks, four domains (exercising the
/// partitioned designs), and occasional line flushes.
fn drive(c: &mut dyn CacheModel) {
    let ws = 24 * 1024u64;
    let mut x = SEED;
    let mut recent = [0u64; 64];
    for i in 0..ACCESSES {
        x = lcg(x);
        let line = if i % 3 == 0 {
            recent[(x >> 32) as usize % 64]
        } else {
            let l = x % ws;
            recent[(i % 64) as usize] = l;
            l
        };
        let d = DomainId((i % 4) as u16);
        if i % 7 == 0 {
            c.access(Request::writeback(line, d));
        } else {
            c.access(Request::read(line, d));
        }
        if i % 997 == 0 {
            c.flush_line(line, d);
        }
    }
}

fn instrumented(d: Design) -> (Box<dyn CacheModel>, Rc<RefCell<MetricsProbe>>) {
    let mut c = d.build(LINES, SEED);
    let (handle, rc) = ProbeHandle::of(MetricsProbe::new(0));
    c.set_probe(handle);
    (c, rc)
}

/// Every probe-side counter equals the matching `CacheStats` field. The
/// emits sit exactly where the stats increment, so any divergence means an
/// instrumentation hole.
#[test]
fn event_counters_reconcile_with_cache_stats() {
    for d in Design::all() {
        let (mut c, rc) = instrumented(d);
        drive(c.as_mut());
        let p = rc.borrow();
        let s = c.stats();
        let id = d.id();
        assert_eq!(s.data_hits, p.counter("llc.hit.data"), "{id}: data hits");
        assert_eq!(
            s.tag_only_hits,
            p.counter("llc.hit.tag_only"),
            "{id}: tag-only hits"
        );
        assert_eq!(s.tag_misses, p.counter("llc.miss"), "{id}: misses");
        assert_eq!(
            s.tag_fills,
            p.counter("llc.fill.tag_only") + p.counter("llc.fill.data"),
            "{id}: tag fills"
        );
        assert_eq!(
            s.data_fills,
            p.counter("llc.fill.data") + p.counter("llc.promotion"),
            "{id}: data fills"
        );
        assert_eq!(s.saes, p.counter("llc.eviction.sae"), "{id}: SAEs");
        assert_eq!(
            s.global_data_evictions,
            p.counter("llc.eviction.global_data"),
            "{id}: global data evictions"
        );
        assert_eq!(
            s.global_tag_evictions,
            p.counter("llc.eviction.global_tag"),
            "{id}: global tag evictions"
        );
        assert_eq!(s.flushes, p.counter("llc.eviction.flush"), "{id}: flushes");
        assert!(
            s.tag_fills >= s.data_fills,
            "{id}: a data fill always installs a tag"
        );
    }
}

/// Data- and tag-entry conservation: everything that entered the cache is
/// either still resident or left through an observed eviction/downgrade/
/// flush. Holds for every design whose invalidation is eager (CEASER's
/// lazy epoch remap is excluded via the rekey counter; the workload here
/// is shorter than its 100k-access epoch anyway).
#[test]
fn fills_equal_residency_plus_releases() {
    for d in Design::all() {
        let (mut c, rc) = instrumented(d);
        drive(c.as_mut());
        let id = d.id();
        {
            let p = rc.borrow();
            if p.counter("llc.rekey") != 0 {
                continue;
            }
            let data_in = p.counter("llc.fill.data") + p.counter("llc.promotion");
            let data_out = p.counter("llc.data_released") + p.counter("llc.flushed_data");
            assert_eq!(
                data_in,
                p.resident_data() + data_out,
                "{id}: data conservation"
            );
            let tags_in = p.counter("llc.fill.tag_only") + p.counter("llc.fill.data");
            let evictions: u64 = ["sae", "global_data", "global_tag", "replacement", "flush"]
                .iter()
                .map(|cause| p.counter(&format!("llc.eviction.{cause}")))
                .sum();
            let tags_out = evictions - p.counter("llc.eviction_downgraded")
                + p.counter("llc.flushed_data")
                + p.counter("llc.flushed_tag_only");
            assert_eq!(
                tags_in,
                p.resident_data() + p.resident_tag_only() + tags_out,
                "{id}: tag conservation"
            );
        }
        // flush_all folds the entire resident population into the flushed
        // counters; both laws must still balance with zero residency.
        c.flush_all();
        let p = rc.borrow();
        assert_eq!(
            p.resident_data() + p.resident_tag_only(),
            0,
            "{id}: flush_all must zero residency"
        );
        let data_in = p.counter("llc.fill.data") + p.counter("llc.promotion");
        let data_out = p.counter("llc.data_released") + p.counter("llc.flushed_data");
        assert_eq!(data_in, data_out, "{id}: data conservation after flush_all");
    }
}

/// Observability is strictly read-only: a run with no probe, a run with
/// the do-nothing probe, and a run with the full metrics collector must
/// finish with bit-identical statistics.
#[test]
fn probes_never_perturb_results() {
    for d in Design::all() {
        let id = d.id();
        let mut plain = d.build(LINES, SEED);
        drive(plain.as_mut());

        let mut nop = d.build(LINES, SEED);
        let (handle, _rc) = ProbeHandle::of(NopProbe);
        nop.set_probe(handle);
        drive(nop.as_mut());
        assert_eq!(plain.stats(), nop.stats(), "{id}: NopProbe changed results");

        let (mut full, _rc) = instrumented(d);
        drive(full.as_mut());
        assert_eq!(
            plain.stats(),
            full.stats(),
            "{id}: MetricsProbe changed results"
        );
    }
}

/// The span profiler is as read-only as the probes: attaching one must
/// leave every design's statistics bit-identical — including the RNG
/// stream, which a second `drive` pass would expose if any profiled code
/// path consumed extra randomness.
#[test]
fn profiler_never_perturbs_model_results() {
    for d in Design::all() {
        let id = d.id();
        let mut plain = d.build(LINES, SEED);
        let mut profiled = d.build(LINES, SEED);
        let (handle, prof) = ProfileHandle::of(SpanProfiler::new());
        profiled.set_profiler(handle);

        drive(plain.as_mut());
        drive(profiled.as_mut());
        assert_eq!(
            plain.stats(),
            profiled.stats(),
            "{id}: profiler changed results"
        );

        // Continue both runs: any RNG divergence introduced by the profiled
        // pass would surface in the victim choices of this second pass.
        drive(plain.as_mut());
        drive(profiled.as_mut());
        assert_eq!(
            plain.stats(),
            profiled.stats(),
            "{id}: profiler perturbed the RNG stream"
        );

        // With no wall timer attached the tree must be purely simulated-
        // clock data: zero wall nanos everywhere, so it reproduces exactly.
        for (path, stats) in prof.borrow().tree().paths() {
            assert_eq!(
                stats.wall_nanos, 0,
                "{id}: span `{path}` accumulated wall time without a timer"
            );
        }
    }
}

/// System-level transparency: a full multi-core timing run with the
/// profiler attached produces a byte-identical `RunResult` (rendered via
/// `Debug`, which covers every field) for both secure designs, and the
/// resulting span tree contains the expected component hierarchy.
#[test]
fn profiler_never_perturbs_system_runs() {
    let cfg = || SystemConfig {
        cores: 2,
        ..SystemConfig::eight_core_default().with_instructions(20_000, 60_000)
    };
    let lines = 2 * 32 * 1024;
    type BuildFn = fn(usize) -> Box<dyn CacheModel>;
    let designs: [(&str, BuildFn); 2] = [
        ("maya", |n| {
            Box::new(MayaCache::new(MayaConfig::for_baseline_lines(n, 7)))
        }),
        ("mirage", |n| {
            Box::new(MirageCache::new(MirageConfig::for_data_entries(n, 7)))
        }),
    ];
    for (id, build) in designs {
        let mix = homogeneous("mcf", 2);
        let bare = System::new(cfg(), build(lines), &mix, 1).run();

        let mix = homogeneous("mcf", 2);
        let mut sys = System::new(cfg(), build(lines), &mix, 1);
        let (handle, prof) = ProfileHandle::of(SpanProfiler::new());
        sys.set_profiler(handle);
        let profiled = sys.run();

        assert_eq!(
            format!("{bare:?}"),
            format!("{profiled:?}"),
            "{id}: profiler changed the system run"
        );

        let tree = prof.borrow().tree();
        let paths: Vec<String> = tree.paths().into_iter().map(|(p, _)| p).collect();
        for want in [
            "run",
            "run;sched",
            "run;core",
            "run;core;llc",
            "run;core;llc;index_derive",
            "run;core;llc;index_derive;prince",
            "run;core;dram",
        ] {
            assert!(
                paths.iter().any(|p| p == want),
                "{id}: span path `{want}` missing from {paths:?}"
            );
        }
        let (run, _) = tree
            .node_and_child_sum("run")
            .unwrap_or_else(|| panic!("{id}: no run span"));
        assert!(run.cycles > 0, "{id}: run span recorded no cycles");
        assert!(run.accesses > 0, "{id}: run span recorded no accesses");
    }
}

/// Two instrumented runs of the same configuration produce identical
/// counter sets — the event stream is a pure function of (workload, seed).
#[test]
fn instrumented_runs_are_deterministic() {
    let run = |d: Design| {
        let (mut c, rc) = instrumented(d);
        drive(c.as_mut());
        let p = rc.borrow();
        let counters: Vec<(&str, u64)> = p.registry().counters().collect();
        counters
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    for d in [Design::Maya, Design::Mirage, Design::Baseline] {
        assert_eq!(run(d), run(d), "{}: counters must reproduce", d.id());
    }
}
