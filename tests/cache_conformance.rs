//! Conformance suite: every `CacheModel` implementation must satisfy the
//! same behavioural contract. Each check runs against the baseline (three
//! replacement policies), the partitioned variants, Mirage, Maya, and the
//! fully-associative reference.

use maya_repro::maya_core::{
    partitioned, AccessEvent, CacheModel, DomainId, FullyAssocCache, MayaCache, MayaConfig,
    MirageCache, MirageConfig, Policy, Request, SetAssocCache, SetAssocConfig,
};

/// Builds one instance of every design, all with ≥ 512 lines of capacity.
fn all_models() -> Vec<Box<dyn CacheModel>> {
    vec![
        Box::new(SetAssocCache::new(SetAssocConfig::new(64, 16, Policy::Lru))),
        Box::new(SetAssocCache::new(SetAssocConfig::new(
            64,
            16,
            Policy::Srrip,
        ))),
        Box::new(SetAssocCache::new(SetAssocConfig::new(
            64,
            16,
            Policy::Drrip,
        ))),
        Box::new(SetAssocCache::new(SetAssocConfig::new(
            64,
            16,
            Policy::Random,
        ))),
        Box::new(partitioned::dawg(64, 16, 8, Policy::Lru)),
        Box::new(partitioned::page_coloring(64, 16, 8, Policy::Srrip)),
        Box::new(MirageCache::new(MirageConfig::for_data_entries(1024, 9))),
        Box::new(MayaCache::new(MayaConfig::with_sets(64, 9))),
        Box::new(FullyAssocCache::new(1024, 9)),
    ]
}

/// Two touches of the same line must make it observable (`probe`) and a
/// third access must be a data hit, in every design.
#[test]
fn two_touches_cache_a_line_everywhere() {
    for mut c in all_models() {
        let d = DomainId(1);
        c.access(Request::read(42, d));
        c.access(Request::read(42, d));
        assert!(
            c.probe(42, d),
            "{}: line not resident after two touches",
            c.name()
        );
        assert_eq!(
            c.access(Request::read(42, d)).event,
            AccessEvent::DataHit,
            "{}: third touch must hit",
            c.name()
        );
    }
}

/// `probe` must never mutate state: two probes bracketing nothing must
/// agree, and stats must not move.
#[test]
fn probe_is_side_effect_free() {
    for mut c in all_models() {
        let d = DomainId(1);
        c.access(Request::read(7, d));
        c.access(Request::read(7, d));
        let stats_before = c.stats().clone();
        let a = c.probe(7, d);
        let b = c.probe(7, d);
        assert_eq!(a, b, "{}", c.name());
        assert_eq!(
            &stats_before,
            c.stats(),
            "{}: probe mutated stats",
            c.name()
        );
    }
}

/// Flushing a resident line removes it; flushing again reports absence.
#[test]
fn flush_semantics_are_uniform() {
    for mut c in all_models() {
        let d = DomainId(1);
        c.access(Request::read(9, d));
        c.access(Request::read(9, d));
        assert!(c.flush_line(9, d), "{}", c.name());
        assert!(!c.probe(9, d), "{}", c.name());
        assert!(!c.flush_line(9, d), "{}", c.name());
    }
}

/// `flush_all` leaves a completely cold cache.
#[test]
fn flush_all_empties_every_design() {
    for mut c in all_models() {
        let d = DomainId(1);
        for line in 0..256u64 {
            c.access(Request::read(line, d));
            c.access(Request::read(line, d));
        }
        c.flush_all();
        for line in 0..256u64 {
            assert!(
                !c.probe(line, d),
                "{}: line {line} survived flush_all",
                c.name()
            );
        }
    }
}

/// Accounting identity: reads + writebacks_in equals hit + miss +
/// (tag-only hits) classifications.
#[test]
fn stats_classification_is_exhaustive() {
    for mut c in all_models() {
        let d = DomainId(1);
        for i in 0..2000u64 {
            let line = i % 700;
            if i % 5 == 0 {
                c.access(Request::writeback(line, d));
            } else {
                c.access(Request::read(line, d));
            }
        }
        let s = c.stats();
        assert_eq!(
            s.accesses(),
            s.data_hits + s.tag_only_hits + s.tag_misses,
            "{}: accesses must partition into hit/tag-only/miss",
            c.name()
        );
    }
}

/// Stats reset touches statistics only — cache contents survive.
#[test]
fn reset_stats_preserves_contents() {
    for mut c in all_models() {
        let d = DomainId(1);
        c.access(Request::read(3, d));
        c.access(Request::read(3, d));
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0, "{}", c.name());
        assert!(c.probe(3, d), "{}: reset_stats evicted a line", c.name());
    }
}

/// Capacity is honoured: after a huge distinct-line storm with double
/// touches, resident lines never exceed `capacity_lines`.
#[test]
fn capacity_is_never_exceeded() {
    for mut c in all_models() {
        let d = DomainId(1);
        let cap = c.capacity_lines() as u64;
        for line in 0..4 * cap {
            c.access(Request::read(line, d));
            c.access(Request::read(line, d));
        }
        let resident = (0..4 * cap).filter(|&l| c.probe(l, d)).count();
        assert!(
            resident <= c.capacity_lines(),
            "{}: {resident} resident > capacity {}",
            c.name(),
            c.capacity_lines()
        );
    }
}

/// Writeback conservation under eviction pressure: every line that was
/// dirtied either leaves through a reported writeback or is still resident
/// dirty (observable by flushing it and counting `writebacks_out`).
#[test]
fn dirty_data_is_conserved() {
    for mut c in all_models() {
        let d = DomainId(1);
        let n = 3 * c.capacity_lines() as u64;
        let mut reported = 0u64;
        for line in 0..n {
            reported += c.access(Request::writeback(line, d)).writebacks.len() as u64;
        }
        let evicted_dirty = c.stats().writebacks_out;
        assert_eq!(
            reported,
            evicted_dirty,
            "{}: Response writebacks and stats must agree",
            c.name()
        );
        // Flush the remainder: afterwards total writebacks equal the number
        // of distinct dirtied lines.
        for line in 0..n {
            c.flush_line(line, d);
        }
        assert_eq!(
            c.stats().writebacks_out,
            n,
            "{}: every dirty line must be written back exactly once",
            c.name()
        );
    }
}

/// The designs report their advertised lookup-latency adders.
#[test]
fn extra_latency_matches_design_class() {
    for c in all_models() {
        match c.name() {
            "maya" | "mirage" => assert_eq!(c.extra_latency(), 4, "{}", c.name()),
            _ => assert_eq!(c.extra_latency(), 0, "{}", c.name()),
        }
    }
}
