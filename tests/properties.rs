//! Property-based tests (proptest) on the core data structures and
//! invariants: the Maya cache's pointer/population invariants under
//! arbitrary request sequences, PRINCE's permutation properties, the
//! Figure-3 state machine, and storage-model monotonicity.

use proptest::prelude::*;

use maya_repro::maya_core::maya::{transition, TagEvent, TagState};
use maya_repro::maya_core::storage::StorageReport;
use maya_repro::maya_core::{
    AccessEvent, CacheModel, DomainId, MayaCache, MayaConfig, MirageCache, MirageConfig, Request,
    Response,
};
use maya_repro::prince_cipher::{IndexFunction, Prince};

/// An arbitrary request over a bounded address space and few domains.
fn arb_request(lines: u64) -> impl Strategy<Value = Request> {
    (0..lines, any::<bool>(), 0u16..3).prop_map(|(line, write, dom)| {
        if write {
            Request::writeback(line, DomainId(dom))
        } else {
            Request::read(line, DomainId(dom))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any request sequence, every Maya structural invariant holds:
    /// fptr/rptr are mutually consistent, population counters match the
    /// lists, priority-0 never exceeds its capacity, and no data entries
    /// leak.
    #[test]
    fn maya_invariants_hold_under_arbitrary_traffic(
        reqs in proptest::collection::vec(arb_request(4096), 1..2000),
        seed in 0u64..1000,
    ) {
        let mut c = MayaCache::new(MayaConfig {
            sets_per_skew: 32,
            skews: 2,
            base_ways_per_skew: 3,
            reuse_ways_per_skew: 2,
            invalid_ways_per_skew: 3,
            skew_selection: maya_repro::maya_core::SkewSelection::LoadAware,
            seed,
        });
        for r in &reqs {
            c.access(*r);
        }
        c.validate();
    }

    /// A demand read immediately after any traffic: either it hits (tag was
    /// priority-1), promotes (priority-0), or misses and leaves a
    /// priority-0 tag behind — and a *second* read of the same line then
    /// always serves data.
    #[test]
    fn maya_two_touches_always_cache_a_line(
        reqs in proptest::collection::vec(arb_request(2048), 0..500),
        line in 0u64..2048,
    ) {
        let mut c = MayaCache::new(MayaConfig::with_sets(32, 5));
        for r in &reqs {
            c.access(*r);
        }
        let d = DomainId(0);
        c.access(Request::read(line, d));
        c.access(Request::read(line, d));
        let r = c.access(Request::read(line, d));
        prop_assert_eq!(r.event, AccessEvent::DataHit);
        c.validate();
    }

    /// Mirage keeps exactly `capacity` lines once warm, regardless of the
    /// traffic pattern.
    #[test]
    fn mirage_occupancy_is_exact_after_warmup(
        reqs in proptest::collection::vec(arb_request(100_000), 2000..4000),
    ) {
        let mut c = MirageCache::new(MirageConfig {
            sets_per_skew: 16,
            skews: 2,
            base_ways_per_skew: 4,
            extra_ways_per_skew: 6,
            skew_selection: maya_repro::maya_core::SkewSelection::LoadAware,
            seed: 3,
        });
        let mut distinct = std::collections::HashSet::new();
        for r in &reqs {
            c.access(*r);
            distinct.insert((r.line, r.domain));
        }
        if distinct.len() >= 2 * c.capacity_lines() {
            let resident = reqs
                .iter()
                .map(|r| (r.line, r.domain))
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .filter(|&(l, d)| c.probe(l, d))
                .count();
            prop_assert_eq!(resident, c.capacity_lines());
        }
    }

    /// PRINCE is a permutation: distinct plaintexts map to distinct
    /// ciphertexts, and decrypt inverts encrypt, for arbitrary keys.
    #[test]
    fn prince_is_a_keyed_permutation(k0: u64, k1: u64, a: u64, b: u64) {
        let c = Prince::new(k0, k1);
        prop_assert_eq!(c.decrypt(c.encrypt(a)), a);
        if a != b {
            prop_assert_ne!(c.encrypt(a), c.encrypt(b));
        }
    }

    /// Index functions stay in range and are deterministic for any seed.
    #[test]
    fn index_function_ranges(seed: u64, addr: u64) {
        let f = IndexFunction::from_seed(seed, 2, 256);
        for skew in 0..2 {
            let i = f.set_index(skew, addr);
            prop_assert!(i < 256);
            prop_assert_eq!(i, f.set_index(skew, addr));
        }
    }

    /// The Figure-3 state machine never reaches an illegal state through
    /// legal events, and data-bearing states always come from a legal path.
    #[test]
    fn tag_state_machine_is_closed(
        events in proptest::collection::vec(
            prop_oneof![
                Just(TagEvent::DemandRead),
                Just(TagEvent::Write),
                Just(TagEvent::GlobalDataEviction),
                Just(TagEvent::GlobalTagEviction),
                Just(TagEvent::Flush),
            ],
            0..64,
        )
    ) {
        let mut state = TagState::Invalid;
        for e in events {
            if let Ok(next) = transition(state, e) {
                // has_data iff priority-1 is an invariant of every state the
                // machine can produce.
                prop_assert_eq!(
                    next.has_data(),
                    matches!(next, TagState::Priority1Clean | TagState::Priority1Dirty)
                );
                state = next;
            }
        }
    }

    /// Storage model: growing any geometry dimension never shrinks storage,
    /// and Maya's total is monotone in reuse ways.
    #[test]
    fn storage_monotonic_in_reuse_ways(r1 in 1usize..6, r2 in 1usize..6) {
        prop_assume!(r1 < r2);
        let mk = |r| StorageReport::maya(&MayaConfig {
            reuse_ways_per_skew: r,
            ..MayaConfig::default_12mb(0)
        });
        prop_assert!(mk(r2).total_kb() > mk(r1).total_kb());
    }

    /// Writebacks of dirty lines are conserved: every dirty line that
    /// leaves the Maya cache is reported exactly once (no lost writebacks)
    /// in a closed workload.
    #[test]
    fn dirty_lines_are_never_silently_dropped(
        lines in proptest::collection::vec(0u64..512, 1..300),
    ) {
        let mut c = MayaCache::new(MayaConfig::with_sets(32, 5));
        let d = DomainId(0);
        let mut dirty = std::collections::HashSet::new();
        let mut written_back = 0u64;
        for &l in &lines {
            let r = c.access(Request::writeback(l, d));
            dirty.insert(l);
            written_back += r.writebacks.len() as u64;
        }
        // Flush everything; count the rest of the writebacks via stats.
        let before = c.stats().writebacks_out;
        prop_assert!(before >= written_back);
        for &l in &dirty {
            c.flush_line(l, d);
        }
        let total_out = c.stats().writebacks_out;
        // Every distinct dirty line is written back exactly once: either
        // evicted earlier or flushed now.
        prop_assert_eq!(total_out, dirty.len() as u64);
    }
}

// --- determinism and audit coverage over the whole design catalog --------
//
// Plain (non-proptest) tests: they enumerate `Design::all()` so every
// registered design — including ones added later — is covered without
// editing this file.

use maya_bench::designs::Design;
use maya_repro::maya_core::AccessKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic mixed trace (reads, writebacks, prefetches, occasional
/// flushes) over a bounded address space, driven into `c`. Returns after
/// `ops` operations.
fn drive_mixed(c: &mut dyn CacheModel, seed: u64, ops: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..ops {
        let line = rng.gen_range(0..8192u64);
        let dom = DomainId(rng.gen_range(0..4u16));
        match rng.gen_range(0..10u32) {
            0..=5 => {
                c.access(Request::read(line, dom));
            }
            6..=7 => {
                c.access(Request::writeback(line, dom));
            }
            8 => {
                c.access(Request {
                    line,
                    kind: AccessKind::Prefetch,
                    domain: dom,
                });
            }
            _ => {
                c.flush_line(line, dom);
            }
        }
    }
}

/// Every design in the catalog is bit-identical across two runs with the
/// same seed: same stats, same probe outcomes. This is the workspace's
/// determinism contract — all randomness flows from the explicit seed.
#[test]
fn every_design_is_bit_identical_across_reruns() {
    for design in Design::all() {
        let run = || {
            let mut c = design.build(32 * 1024, 0xD5EED);
            drive_mixed(c.as_mut(), 0xACE5, 6_000);
            let probes: Vec<bool> = (0..256u64).map(|l| c.probe(l, DomainId(1))).collect();
            (c.stats().clone(), probes)
        };
        let (stats_a, probes_a) = run();
        let (stats_b, probes_b) = run();
        assert_eq!(
            stats_a,
            stats_b,
            "{}: stats diverged across reruns",
            design.id()
        );
        assert_eq!(
            probes_a,
            probes_b,
            "{}: probe outcomes diverged",
            design.id()
        );
    }
}

/// After a long mixed workload every design still passes its structural
/// audit — and a flush_all later, too. Designs without a specific audit
/// inherit the no-op default, so this also pins that audit() stays
/// object-safe and callable through `dyn CacheModel`.
#[test]
fn audit_passes_after_long_mixed_workloads() {
    for design in Design::all() {
        let mut c = design.build(32 * 1024, 0xF00D);
        drive_mixed(c.as_mut(), 0xBEEF, 20_000);
        c.audit()
            .unwrap_or_else(|e| panic!("{}: audit failed after mixed workload: {e}", design.id()));
        c.flush_all();
        c.audit()
            .unwrap_or_else(|e| panic!("{}: audit failed after flush_all: {e}", design.id()));
    }
}

/// One step of an arbitrary interleaving: demand traffic, line and whole
/// flushes, and mid-stream re-keys (the operation that rebuilds the index
/// function and with it the arena layout's access order).
#[derive(Debug, Clone, Copy)]
enum InterleaveOp {
    /// A demand read.
    Read(u64, u16),
    /// A dirty writeback arriving from the level above.
    Write(u64, u16),
    /// A prefetch (Maya ignores these by design; Mirage installs).
    Prefetch(u64, u16),
    /// Flush one line.
    FlushLine(u64, u16),
    /// Flush the whole cache.
    FlushAll,
    /// Re-key with a fresh seed.
    Rekey(u64),
}

fn arb_interleave_op(lines: u64) -> impl Strategy<Value = InterleaveOp> {
    use InterleaveOp::*;
    // The vendored proptest has no weighted prop_oneof; bias toward
    // demand traffic by drawing a selector alongside the operands.
    (0u32..16, 0..lines, 0u16..3, 0u64..1_000_000).prop_map(|(sel, l, d, s)| match sel {
        0..=7 => Read(l, d),
        8..=11 => Write(l, d),
        12 => Prefetch(l, d),
        13 => FlushLine(l, d),
        14 => FlushAll,
        _ => Rekey(s),
    })
}

/// Drives `ops` into a cache, collecting the exact observable record of
/// every step: the full `Response` (event, SAE flag, writeback lines) or
/// flush outcome. `rekey` applies the design's re-key entry point.
fn interleave_run<C: CacheModel>(
    mut c: C,
    ops: &[InterleaveOp],
    rekey: impl Fn(&mut C, u64),
) -> (Vec<(u32, Response)>, maya_repro::maya_core::CacheStats) {
    let mut log = Vec::new();
    // Placeholder record for non-access ops (flushes, re-keys); the
    // `sae` slot carries flush_line's hit/miss outcome.
    let blank = Response {
        event: AccessEvent::Miss,
        writebacks: maya_repro::maya_core::Writebacks::none(),
        sae: false,
    };
    for (i, op) in ops.iter().enumerate() {
        let r = match *op {
            InterleaveOp::Read(l, d) => c.access(Request::read(l, DomainId(d))),
            InterleaveOp::Write(l, d) => c.access(Request::writeback(l, DomainId(d))),
            InterleaveOp::Prefetch(l, d) => c.access(Request {
                line: l,
                kind: maya_repro::maya_core::AccessKind::Prefetch,
                domain: DomainId(d),
            }),
            InterleaveOp::FlushLine(l, d) => {
                let hit = c.flush_line(l, DomainId(d));
                let mut r = blank;
                r.sae = hit;
                r
            }
            InterleaveOp::FlushAll => {
                c.flush_all();
                blank
            }
            InterleaveOp::Rekey(s) => {
                rekey(&mut c, s);
                c.audit().expect("audit after rekey");
                blank
            }
        };
        log.push((i as u32, r));
    }
    c.audit().expect("audit after interleaving");
    (log, c.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Twin determinism under arbitrary access/flush/rekey interleavings:
    /// two identically-seeded Maya instances driven by the same random op
    /// sequence produce byte-for-byte the same response stream, writeback
    /// lines, stats, and pass their structural audit at every re-key.
    /// This is the arena layout's bit-transparency contract exercised on
    /// adversarial schedules rather than the committed fixture trace.
    #[test]
    fn maya_interleavings_are_deterministic_twins(
        ops in proptest::collection::vec(arb_interleave_op(4096), 1..600),
        seed in 0u64..500,
    ) {
        let build = || MayaCache::new(MayaConfig { seed, ..MayaConfig::with_sets(32, 5) });
        let a = interleave_run(build(), &ops, |c, s| c.rekey(s));
        let b = interleave_run(build(), &ops, |c, s| c.rekey(s));
        prop_assert_eq!(a, b);
    }

    /// The same twin contract for Mirage, whose re-key path also walks the
    /// arena (flush + fresh index function).
    #[test]
    fn mirage_interleavings_are_deterministic_twins(
        ops in proptest::collection::vec(arb_interleave_op(4096), 1..600),
        seed in 0u64..500,
    ) {
        let build = || {
            let mut cfg = MirageConfig::for_data_entries(1024, seed);
            cfg.seed = seed;
            MirageCache::new(cfg)
        };
        let a = interleave_run(build(), &ops, |c, s| c.rekey(s));
        let b = interleave_run(build(), &ops, |c, s| c.rekey(s));
        prop_assert_eq!(a, b);
    }
}
