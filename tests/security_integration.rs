//! Integration tests tying the three security views together: the real
//! cache, the bucket-and-balls Monte-Carlo model, and the analytic
//! Birth–Death model must tell one consistent story.

use maya_repro::maya_core::{CacheModel, DomainId, MayaCache, MayaConfig, Request};
use maya_repro::security_model::analytic::AnalyticModel;
use maya_repro::security_model::balls::BallsSim;
use maya_repro::security_model::config::BallsConfig;

/// The analytic model reproduces the paper's calibration: Pr(n=0) from a
/// trillion-iteration run was ~7.7e-7; our normalization-solved value must
/// land on the same order without any Monte-Carlo input.
#[test]
fn analytic_matches_paper_calibration_point() {
    let d = AnalyticModel::new(3.0, 6.0).distribution(40);
    assert!((7.7e-8..7.7e-6).contains(&d[0]), "Pr(n=0) = {:.3e}", d[0]);
}

/// Monte-Carlo and analytic occupancy distributions agree in the bulk
/// (Figure 7's cross-validation).
#[test]
fn monte_carlo_and_analytic_distributions_agree() {
    let mut sim = BallsSim::new(BallsConfig::small(15));
    let out = sim.run(300_000);
    let analytic = AnalyticModel::new(3.0, 6.0).distribution(15);
    for (n, &a) in analytic.iter().enumerate().take(13).skip(5) {
        let e = out.occupancy[n];
        assert!(
            e > 0.0 && (e / a).log10().abs() < 0.5,
            "n={n}: experimental {e:.3e} vs analytic {a:.3e}"
        );
    }
}

/// The real cache's bucket-occupancy distribution matches the balls model's
/// steady state: the same average load and the same tail behaviour.
#[test]
fn real_cache_occupancies_match_the_balls_model() {
    let config = MayaConfig::with_sets(512, 9);
    let mut cache = MayaCache::new(config.clone());
    // Mixed demand/writeback traffic with reuse drives the tag store to its
    // steady-state composition.
    for i in 0..600_000u64 {
        let line = i % 200_000;
        if i % 3 == 0 {
            cache.access(Request::writeback(line, DomainId(0)));
        } else {
            cache.access(Request::read(line, DomainId(0)));
        }
    }
    let p0 = cache.p0_count();
    let p1 = cache.p1_count();
    assert_eq!(
        p0,
        config.p0_capacity(),
        "p0 population must pin at capacity"
    );
    assert_eq!(p1, config.data_entries(), "data store must be full");
    // Average bucket load = 9 balls, as in Table II.
    let buckets = config.sets_per_skew * config.skews;
    let avg = (p0 + p1) as f64 / buckets as f64;
    assert!((avg - 9.0).abs() < 1e-9, "avg load {avg}");
    assert_eq!(cache.stats().saes, 0);
    cache.validate();
}

/// Security degrades monotonically along every axis the paper sweeps:
/// fewer invalid ways, more reuse ways, higher associativity.
#[test]
fn analytic_monotonicity_along_all_axes() {
    // Invalid ways.
    let m = AnalyticModel::new(3.0, 6.0);
    let by_invalid: Vec<f64> = (3..=7).map(|inv| m.installs_per_sae(9 + inv)).collect();
    assert!(
        by_invalid.windows(2).all(|w| w[1] > w[0] * 100.0),
        "{by_invalid:?}"
    );
    // Reuse ways at fixed capacity budget.
    let by_reuse: Vec<f64> = [1usize, 3, 5, 7]
        .iter()
        .map(|&r| AnalyticModel::new(r as f64, 6.0).installs_per_sae(6 + r + 6))
        .collect();
    assert!(by_reuse.windows(2).all(|w| w[1] < w[0]), "{by_reuse:?}");
    // Associativity (Table IV).
    let by_assoc: Vec<f64> = [(1.0, 3.0), (3.0, 6.0), (6.0, 12.0)]
        .iter()
        .map(|&(r, b)| AnalyticModel::new(r, b).installs_per_sae((r + b) as usize + 6))
        .collect();
    assert!(by_assoc.windows(2).all(|w| w[1] < w[0]), "{by_assoc:?}");
}

/// The balls model and the real cache agree on the *load-aware* claim: the
/// paper-default provisioning absorbs worst-case fill storms without SAEs.
#[test]
fn default_provisioning_survives_fill_storms() {
    let mut cache = MayaCache::new(MayaConfig::with_sets(256, 11));
    for i in 0..500_000u64 {
        // Worst case: every access is a miss (the paper's security analysis
        // assumption), alternating demand and writeback misses.
        if i % 2 == 0 {
            cache.access(Request::read(i, DomainId((i % 4) as u16)));
        } else {
            cache.access(Request::writeback(i, DomainId((i % 4) as u16)));
        }
    }
    assert_eq!(cache.stats().saes, 0);

    let mut sim = BallsSim::new(BallsConfig::small(15));
    let out = sim.run(500_000);
    assert_eq!(
        out.spills, 0,
        "balls model must agree: no spills at capacity 15"
    );
}
