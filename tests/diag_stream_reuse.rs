//! Diag/experiment grids replay one recorded trace per `(benchmark, core,
//! seed)` stream instead of re-synthesizing it for every design row.
//!
//! The thread-local [`workloads::block::TraceCache`] is the mechanism;
//! these tests pin the two claims the harness depends on: (a) running the
//! same mix through several design rows synthesizes each core's stream
//! exactly once and replays it for every later row, and (b) every row —
//! replayed or freshly recorded — observes a byte-identical access stream,
//! equal to what a plain per-access generator would have produced.
//!
//! Each `#[test]` runs on its own thread and therefore gets a fresh
//! thread-local cache; the tests still assert on stat *deltas* so they
//! stay valid if that harness detail ever changes.

use maya_bench::designs::Design;
use maya_bench::perf::{run_mix, SEED};
use maya_bench::Scale;
use maya_repro::workloads::block::{cached_generators, shared_cache_stats};
use maya_repro::workloads::mixes::homogeneous;
use maya_repro::workloads::TraceGenerator;

/// Accesses hashed per core when fingerprinting a stream: a few block-cache
/// extensions' worth (16 × `BLOCK_ACCESSES`), enough to cross several
/// synthesize-on-demand boundaries.
const HASHED_ACCESSES: usize = 4096;

/// FNV-1a over every field of the next [`HASHED_ACCESSES`] accesses.
fn stream_hash(gen: &mut dyn TraceGenerator) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for _ in 0..HASHED_ACCESSES {
        let a = gen.next_access();
        mix(a.addr);
        mix(a.is_write as u64);
        mix(a.pc);
        mix(a.gap as u64);
        mix(a.dependent as u64);
    }
    h
}

/// Three design rows over one mix: the first row's `cached_generators`
/// call records each core's stream, the later rows replay, and all three
/// see the same bytes as a fresh per-access generator.
#[test]
fn design_rows_share_recordings_and_streams() {
    let mix = homogeneous("bwaves", 2);
    let (syn0, rep0) = shared_cache_stats();
    let mut row_hashes = Vec::new();
    for _row in 0..3 {
        let gens = cached_generators(&mix.specs, SEED);
        let mut h = 0u64;
        for mut g in gens {
            h ^= stream_hash(g.as_mut());
        }
        row_hashes.push(h);
    }
    let (syn1, rep1) = shared_cache_stats();
    assert_eq!(syn1 - syn0, 2, "first row records one stream per core");
    assert_eq!(rep1 - rep0, 4, "two later rows replay both cores");
    assert_eq!(row_hashes[0], row_hashes[1], "row 2 diverged from row 1");
    assert_eq!(row_hashes[1], row_hashes[2], "row 3 diverged from row 2");

    // The recorded stream is what a plain generator produces per access.
    let mut fresh = 0u64;
    for (core, spec) in mix.specs.iter().enumerate() {
        let mut g = spec.generator(core, SEED);
        fresh ^= stream_hash(&mut g);
    }
    assert_eq!(fresh, row_hashes[0], "replay diverged from fresh generator");
}

/// The real diag path: `run_mix` for baseline, Mirage, and Maya on one
/// mix generates each core's trace once and replays it for the other two
/// design rows — and the rows agree on everything upstream of the LLC.
#[test]
fn diag_rows_generate_once_and_replay() {
    let scale = Scale {
        warmup: 2_000,
        measure: 6_000,
        mc_iterations: 0,
        attack_trials: 0,
    };
    let mix = homogeneous("bwaves", 2);
    let (syn0, rep0) = shared_cache_stats();
    let results = [
        run_mix(Design::Baseline, &mix, scale),
        run_mix(Design::Mirage, &mix, scale),
        run_mix(Design::Maya, &mix, scale),
    ];
    let (syn1, rep1) = shared_cache_stats();
    assert_eq!(syn1 - syn0, 2, "only the first design row synthesizes");
    assert_eq!(rep1 - rep0, 4, "later design rows replay every core");
    // Identical input streams: per-core instruction counts cannot differ
    // across designs (they are a function of the trace, not the LLC).
    for r in &results[1..] {
        assert_eq!(r.cores.len(), results[0].cores.len());
        for (a, b) in r.cores.iter().zip(&results[0].cores) {
            assert_eq!(a.instructions, b.instructions);
        }
    }
}
