#!/usr/bin/env bash
# Regenerates every paper table/figure into experiments_output.txt.
#
# The default scale below is sized for a single-core machine; raise --scale
# for higher-fidelity runs (the paper-facing shapes are stable across
# scales — see EXPERIMENTS.md). Experiments are ordered so the most
# important results land first if the run is interrupted.
#
# Env knobs: SCALE= (fidelity), JOBS= (worker threads; output is
# byte-identical at any count), NO_CACHE=1 (bypass the target/exp-cache
# result cache — an interrupted or re-run sweep otherwise reuses every
# completed cell), METRICS_DIR= (write per-cell metrics sidecars there and
# render an obs-report under $METRICS_DIR/report; implies NO_CACHE).
set -uo pipefail

OUT=${1:-experiments_output.txt}
BIN=./target/release/experiments
SCALE=${SCALE:-0.08}

EXTRA=()
[[ -n "${JOBS:-}" ]] && EXTRA+=(--jobs "$JOBS")
[[ -n "${NO_CACHE:-}" ]] && EXTRA+=(--no-cache)
[[ -n "${METRICS_DIR:-}" ]] && EXTRA+=(--metrics-dir "$METRICS_DIR")

: > "$OUT"
run() {
  echo "== running: $* ==" >&2
  "$BIN" "$@" ${EXTRA[@]+"${EXTRA[@]}"} >> "$OUT" 2>> "$OUT.log"
  echo >> "$OUT"
}

# Fast, deterministic results first.
run tab8 tab9 tab1 tab4
run demo-flush demo-eviction demo-randomized
run ablate-skew ablate-threshold --scale "$SCALE"
run fig7 --scale "$SCALE"
# Headline performance sweeps.
run fig9 --scale "$SCALE"
run fig1 --scale "$SCALE"
run fig10 --scale "$SCALE"
run fig4 --scale "$SCALE"
# Security Monte-Carlo and the attack experiment.
run fig6 --scale "$SCALE"
run fig8 --scale "$SCALE"
# Secondary tables and studies.
run tab11 --scale "$SCALE"
run tab7 --scale "$SCALE"
run llcfit --scale "$SCALE"
run ablate-reuse --scale "$SCALE"
run sens-llc --scale "$SCALE"
run sens-cores --scale "$SCALE"
run robustness --scale "$SCALE"
run tab10 --scale "$SCALE"
if [[ -n "${METRICS_DIR:-}" ]]; then
  echo "== rendering telemetry report ==" >&2
  ./target/release/obs-report "$METRICS_DIR" >&2
fi
echo "all experiments written to $OUT" >&2
