//! A dependency-free, offline subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this crate and patches it over `criterion` (see
//! `[patch.crates-io]` in the workspace `Cargo.toml`). Bench targets
//! compile and run against it, but instead of statistical wall-clock
//! measurement each benchmark closure is executed a small fixed number of
//! iterations — enough to exercise the benched code deterministically (the
//! workspace measures real performance with `maya-bench`'s own `perfbench`
//! binary, not with criterion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Iterations each `Bencher::iter` closure is run.
const ITERS_PER_BENCH: u32 = 3;

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, reported with decimal multiples.
    BytesDecimal(u64),
}

/// The benchmark manager handed to each target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored; the stub runs a fixed count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher { iters: 0 };
    f(&mut b);
    if group.is_empty() {
        println!("bench {id}: ok ({} iterations)", b.iters);
    } else {
        println!("bench {group}/{id}: ok ({} iterations)", b.iters);
    }
}

/// The per-benchmark timing harness handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `f` for the stub's fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS_PER_BENCH {
            black_box(f());
            self.iters += 1;
        }
    }
}

/// Bundles benchmark target functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
