//! Strategies: deterministic samplers for test inputs.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of values for one proptest argument.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// just samples a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice between strategies of one type (`prop_oneof!`).
#[derive(Clone, Debug)]
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }
        )+
    };
}

int_range_strategy! { u8, u16, u32, u64, usize }

macro_rules! signed_range_strategy {
    ($($ty:ty as $via:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $via).wrapping_sub(self.start as $via) as u64;
                    ((self.start as $via).wrapping_add(rng.below(span) as $via)) as $ty
                }
            }
        )+
    };
}

signed_range_strategy! { i32 as i64, i64 as i128 }

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy! { A }
tuple_strategy! { A, B }
tuple_strategy! { A, B, C }
tuple_strategy! { A, B, C, D }
tuple_strategy! { A, B, C, D, E }
tuple_strategy! { A, B, C, D, E, F }
