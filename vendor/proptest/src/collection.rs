//! Collection strategies: `vec(element, size)`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Samples `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
