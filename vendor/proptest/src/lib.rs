//! A dependency-free, offline subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this crate and patches it over `proptest` (see
//! `[patch.crates-io]` in the workspace `Cargo.toml`). It keeps the same
//! surface the workspace's property tests use — `proptest!`,
//! `prop_assert*`, `prop_assume!`, `prop_oneof!`, `Just`, `any`,
//! `Strategy::prop_map`, `proptest::collection::vec`, and range
//! strategies — but samples cases from a fixed deterministic seed instead
//! of shrinking failures. Failing cases panic with the sampled inputs'
//! debug representation where available.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a proptest-based test file normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests over sampled inputs.
///
/// Supports the two argument forms the real macro accepts: `pat in
/// strategy` and `name: Type` (the latter samples `any::<Type>()`), plus an
/// optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    // `pat in strategy` arguments.
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(64).max(1024),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    // `name: Type` arguments (sampled via `any::<Type>()`).
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_items! {
            cfg = ($cfg);
            $(#[$meta])*
            fn $name($($arg in $crate::arbitrary::any::<$ty>()),+) $body
            $($rest)*
        }
    };
}

/// Fails the test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
}

/// Fails the test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly between several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}
