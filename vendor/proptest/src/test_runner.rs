//! Test execution support: configuration, case outcomes, and the
//! deterministic RNG cases are sampled from.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// The deterministic RNG used to sample strategies (SplitMix64).
///
/// Seeded from the test's name so every run of every test is reproducible;
/// there is no entropy source anywhere in this crate.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, folded into a fixed tweak.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)` via widening multiply with rejection.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let t = (v as u128) * (n as u128);
            if (t as u64) <= zone {
                return (t >> 64) as u64;
            }
        }
    }
}
