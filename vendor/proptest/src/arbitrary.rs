//! `any::<T>()`: whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// A strategy sampling the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

any_int! { u8, u16, u32, u64, usize, i8, i16, i32, i64, isize }

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Uniform on [0, 1): enough for property tests over floats.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
