//! The generators this workspace uses: just [`SmallRng`].

mod xoshiro256plusplus;

pub use xoshiro256plusplus::SmallRng;
