//! `SmallRng`: the xoshiro256++ generator, matching rand 0.8.5 on 64-bit
//! targets bit for bit (state layout, seeding, and output function).

use crate::{RngCore, SeedableRng};

/// A small-state, fast, non-cryptographic PRNG (xoshiro256++).
///
/// Identical output to rand 0.8.5's `SmallRng` on 64-bit platforms: the
/// same `seed_from_u64` SplitMix64 expansion, the same `++` scrambler, and
/// the same upper-bits `next_u32`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        SmallRng { s }
    }

    /// Seeds from a `u64` using SplitMix64, exactly as rand 0.8.5 does for
    /// its vendored xoshiro256++.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = <Self as SeedableRng>::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z = z ^ (z >> 31);
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // rand 0.8.5 uses the upper bits here; keep that for compatibility.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);

        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);

        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_from_explicit_state() {
        // Reference values from the xoshiro256++ C reference implementation
        // seeded with s = [1, 2, 3, 4].
        let mut rng = SmallRng {
            s: [1, 2, 3, 4],
        };
        let expected: [u64; 4] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_nonzero() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(SmallRng::seed_from_u64(0).s, [0; 4]);
    }

    #[test]
    fn next_u32_takes_upper_bits() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = a.clone();
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
