//! A dependency-free, offline re-implementation of the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this crate and patches it over `rand` (see `[patch.crates-io]`
//! in the workspace `Cargo.toml`). It is written to be *bit-compatible*
//! with rand 0.8.5 for every call the workspace makes:
//!
//! - [`rngs::SmallRng`] is xoshiro256++ (the algorithm rand 0.8 vendors on
//!   64-bit targets), with the SplitMix64 `seed_from_u64` construction.
//! - `next_u32` takes the upper 32 bits of `next_u64`, as rand 0.8.5 does.
//! - [`Rng::gen_range`] over integers uses the widening-multiply rejection
//!   sampler (Lemire) with rand 0.8.5's zone computation; floats use the
//!   `[1, 2)`-mantissa construction.
//! - [`Rng::gen_bool`] uses the 64-bit fixed-point Bernoulli sampler.
//!
//! Only the API surface the workspace needs is provided; anything else is
//! intentionally absent so accidental use fails loudly at compile time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
mod uniform;

pub use distributions::Distribution;
pub use uniform::{SampleRange, SampleUniform};

/// The core of a random number generator: raw integer output.
///
/// Mirrors `rand_core::RngCore` (0.6) minus the fallible methods.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes (little-endian `u64` chunks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
///
/// Mirrors `rand_core::SeedableRng` (0.6); the default `seed_from_u64`
/// is the PCG-based seed expansion rand_core uses, though [`rngs::SmallRng`]
/// overrides it with SplitMix64 exactly as rand 0.8.5 does.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it over the seed.
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6's default implementation (PCG32 output function).
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, as an extension of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
        Self: Sized,
    {
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let b = distributions::Bernoulli::new(p)
            .unwrap_or_else(|| panic!("p={p:?} is outside range [0.0, 1.0]"));
        b.sample(self)
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}
