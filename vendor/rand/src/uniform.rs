//! Uniform range sampling (`Rng::gen_range`), matching rand 0.8.5's
//! single-sample path: widening-multiply rejection for integers (with the
//! exact zone computation per integer width) and the `[1, 2)`-mantissa
//! construction for floats.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A type that `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Samples uniformly from `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// A range form accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Widening multiply: `(hi, lo)` halves of `a * b`.
macro_rules! wmul {
    ($a:expr, $b:expr, u32) => {{
        let t = ($a as u64) * ($b as u64);
        ((t >> 32) as u32, t as u32)
    }};
    ($a:expr, $b:expr, u64) => {{
        let t = ($a as u128) * ($b as u128);
        ((t >> 64) as u64, t as u64)
    }};
    ($a:expr, $b:expr, usize) => {{
        let t = ($a as u128) * ($b as u128);
        ((t >> 64) as usize, t as usize)
    }};
}

macro_rules! draw_large {
    ($rng:expr, u32) => {
        $rng.next_u32()
    };
    ($rng:expr, u64) => {
        $rng.next_u64()
    };
    ($rng:expr, usize) => {
        $rng.next_u64() as usize
    };
}

macro_rules! standard_draw {
    ($rng:expr, u8) => {
        $rng.next_u32() as u8
    };
    ($rng:expr, u16) => {
        $rng.next_u32() as u16
    };
    ($rng:expr, u32) => {
        $rng.next_u32()
    };
    ($rng:expr, u64) => {
        $rng.next_u64()
    };
    ($rng:expr, usize) => {
        $rng.next_u64() as usize
    };
    ($rng:expr, i32) => {
        $rng.next_u32() as i32
    };
    ($rng:expr, i64) => {
        $rng.next_u64() as i64
    };
}

macro_rules! uniform_int_impl {
    ($ty:tt, $unsigned:ty, $u_large:tt) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // `range == 0` encodes the full integer range.
                if range == 0 {
                    return standard_draw!(rng, $ty);
                }
                let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                    // Exact zone for small widths (as rand does for u8/u16).
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    // Conservative but fast approximation.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = draw_large!(rng, $u_large);
                    let (hi, lo) = wmul!(v, range, $u_large);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { u8, u8, u32 }
uniform_int_impl! { u16, u16, u32 }
uniform_int_impl! { u32, u32, u32 }
uniform_int_impl! { u64, u64, u64 }
uniform_int_impl! { usize, usize, usize }
uniform_int_impl! { i32, u32, u32 }
uniform_int_impl! { i64, u64, u64 }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:tt, $bits_to_discard:expr, $exp_bias:expr, $fraction_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                let mut scale = high - low;
                assert!(
                    scale.is_finite(),
                    "UniformSampler::sample_single: range overflow"
                );
                loop {
                    // A value in [1, 2): random mantissa under a fixed exponent.
                    let fraction = draw_large!(rng, $uty) >> $bits_to_discard;
                    let value1_2 =
                        <$ty>::from_bits(fraction | (($exp_bias as $uty) << $fraction_bits));
                    // Multiply-before-add, exactly as rand 0.8.5 writes it.
                    let res = value1_2 * scale + (low - scale);
                    if res < high {
                        return res;
                    }
                    // Pathological rounding: shrink the scale by one ULP and
                    // retry (rand's decrease_masked).
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                if low == high {
                    return low;
                }
                let scale = high - low;
                let fraction = draw_large!(rng, $uty) >> $bits_to_discard;
                let value1_2 =
                    <$ty>::from_bits(fraction | (($exp_bias as $uty) << $fraction_bits));
                value1_2 * scale + (low - scale)
            }
        }
    };
}

uniform_float_impl! { f64, u64, 12, 1023u64, 52 }
uniform_float_impl! { f32, u32, 9, 127u32, 23 }

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..2000 {
            let a = rng.gen_range(0..10u32);
            assert!(a < 10);
            let b = rng.gen_range(0..4096u64);
            assert!(b < 4096);
            let c = rng.gen_range(0..3usize);
            assert!(c < 3);
            let d = rng.gen_range(0..4u16);
            assert!(d < 4);
            let e = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&e));
            let f = rng.gen_range(0..=7u64);
            assert!(f <= 7);
        }
    }

    #[test]
    fn ranges_cover_every_value() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "low >= high")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(13);
        rng.gen_range(5..5u32);
    }
}
