//! The `Standard` and `Bernoulli` distributions, matching rand 0.8.5's
//! sampling exactly.

use crate::RngCore;

/// A type that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: full-range integers, `[0, 1)` floats, fair
/// booleans — with rand 0.8.5's exact draw order and bit usage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        // 64-bit targets draw a full u64, as rand does via cfg.
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8.5 sign-tests the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit multiply construction: uniform on [0, 1).
        let value = rng.next_u64() >> 11;
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * (value as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24-bit multiply construction: uniform on [0, 1).
        let value = rng.next_u32() >> 8;
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * (value as f32)
    }
}

/// The Bernoulli distribution over `{true, false}` with 64-bit fixed-point
/// probability, as in rand 0.8.5.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    /// Probability scaled to `[0, 2^64]`; `u64::MAX` encodes exactly 1.
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Constructs the distribution; `None` if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Option<Self> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Some(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return None;
        }
        Some(Bernoulli {
            p_int: (p * SCALE) as u64,
        })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "got {hits}");
    }

    #[test]
    fn bool_uses_u32_sign_bit() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = a.clone();
        let x: bool = a.gen();
        assert_eq!(x, (b.next_u32() as i32) < 0);
    }
}
