//! Security headroom explorer: how the SAE rate responds to the tag-store
//! geometry, using both the analytic Birth–Death model and a live
//! Monte-Carlo cross-check.
//!
//! ```text
//! cargo run --release --example security_headroom [reuse_ways] [invalid_ways]
//! ```
//!
//! Defaults reproduce the paper's design point (3 reuse + 6 invalid
//! ways/skew -> one SAE in ~10^16 years).

use maya_repro::security_model::analytic::{format_installs, installs_to_years, AnalyticModel};
use maya_repro::security_model::balls::BallsSim;
use maya_repro::security_model::config::BallsConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let reuse: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let invalid: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let base = 6usize;
    let capacity = base + reuse + invalid;

    println!(
        "geometry: {base} base + {reuse} reuse + {invalid} invalid ways/skew \
         (capacity {capacity})\n"
    );

    let model = AnalyticModel::new(reuse as f64, base as f64);
    println!("analytic occupancy distribution (Birth-Death chain):");
    let dist = model.distribution(capacity + 1);
    for (n, p) in dist.iter().enumerate() {
        let bar = "#".repeat((p * 120.0).round() as usize);
        println!("  n={n:<2} Pr={p:.3e} {bar}");
    }

    let installs = model.installs_per_sae(capacity);
    println!(
        "\nset-associative eviction expected every {}",
        format_installs(installs)
    );
    let years = installs_to_years(installs);
    let verdict = if years > 100.0 {
        "beyond system lifetime: SECURE"
    } else {
        "within reach of an attacker: NOT SECURE"
    };
    println!("at one fill per nanosecond that is {years:.1e} years — {verdict}");

    // Cross-check the head of the distribution with a short Monte-Carlo run.
    println!("\nMonte-Carlo cross-check (2M iterations, 1K buckets/skew):");
    let mut sim = BallsSim::new(BallsConfig {
        buckets_per_skew: 1024,
        avg_p0_per_bucket: reuse,
        avg_p1_per_bucket: base,
        bucket_capacity: capacity,
        ..BallsConfig::paper_default(capacity)
    });
    let out = sim.run(2_000_000);
    println!("  spills observed: {}", out.spills);
    for (n, a) in dist
        .iter()
        .enumerate()
        .take(capacity + 1)
        .skip(capacity.saturating_sub(4))
    {
        let e = out.occupancy.get(n).copied().unwrap_or(0.0);
        println!("  n={n:<2} experimental {e:.3e} vs analytic {a:.3e}");
    }
}
