//! Multicore showdown: run the same 4-core mix on the baseline, Mirage,
//! and Maya LLCs and compare IPC, MPKI, dead blocks, and cross-domain
//! interference.
//!
//! ```text
//! cargo run --release --example multicore_showdown [benchmark]
//! ```
//!
//! The optional argument is any catalog benchmark (`mcf`, `lbm`,
//! `fotonik3d`, ...); default is `mcf`, the paper's flagship winner for
//! Maya.

use maya_repro::champsim_lite::{System, SystemConfig};
use maya_repro::maya_core::{
    CacheModel, MayaCache, MayaConfig, MirageCache, MirageConfig, Policy, SetAssocCache,
    SetAssocConfig,
};
use maya_repro::workloads::mixes::homogeneous;

fn main() {
    let benchmark = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let cores = 4;
    let cfg = SystemConfig {
        cores,
        ..SystemConfig::eight_core_default().with_instructions(300_000, 1_000_000)
    };
    let baseline_lines = cfg.baseline_llc_lines();
    let mix = homogeneous(&benchmark, cores);

    println!(
        "running {benchmark} on {cores} cores, {} MB baseline LLC, {} instructions/core\n",
        baseline_lines * 64 / (1024 * 1024),
        cfg.warmup_instructions + cfg.measure_instructions
    );
    println!(
        "{:<10} {:>8} {:>8} {:>7} {:>9} {:>12} {:>6}",
        "design", "IPC-sum", "MPKI", "dead%", "hits", "cross-evict", "SAEs"
    );

    let designs: Vec<(&str, Box<dyn CacheModel>)> = vec![
        (
            "baseline",
            Box::new(SetAssocCache::new(SetAssocConfig::new(
                baseline_lines / 16,
                16,
                Policy::Srrip,
            ))),
        ),
        (
            "mirage",
            Box::new(MirageCache::new(MirageConfig::for_data_entries(
                baseline_lines,
                7,
            ))),
        ),
        (
            "maya",
            Box::new(MayaCache::new(MayaConfig::for_baseline_lines(
                baseline_lines,
                7,
            ))),
        ),
    ];

    for (name, llc) in designs {
        let mut sys = System::new(cfg.clone(), llc, &mix, 42);
        let r = sys.run();
        println!(
            "{:<10} {:>8.3} {:>8.2} {:>7.1} {:>9} {:>12} {:>6}",
            name,
            r.ipc_sum(),
            r.avg_mpki(),
            r.dead_block_fraction().unwrap_or(0.0) * 100.0,
            r.llc.data_hits,
            r.llc.cross_domain_evictions,
            r.llc.saes,
        );
    }

    println!(
        "\nreading the table: Maya trades data-store capacity (12/16 of the baseline)\n\
         for reuse filtering — dead blocks never occupy its data store, which cuts\n\
         cross-domain evictions; SAEs stay at zero, which is the security property."
    );
}
