//! Quickstart: build a Maya cache, watch the reuse-filtering state machine
//! do its job, and print the storage story.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use maya_repro::maya_core::storage::table_viii_reports;
use maya_repro::maya_core::{
    maya::TagState, AccessEvent, CacheModel, DomainId, MayaCache, MayaConfig, Request,
};

fn main() {
    // A small Maya instance: 256 sets/skew, the paper's 6+3+6 way mix.
    let mut llc = MayaCache::new(MayaConfig::with_sets(256, 0xC0FFEE));
    let domain = DomainId(0);
    let line = 0xAB_CDEF;

    println!("== The life of a cache line in Maya ==");
    let r = llc.access(Request::read(line, domain));
    println!(
        "first touch   -> {:?}, tag state {:?} (tag-only; data NOT cached)",
        r.event,
        llc.tag_state(line, domain).unwrap()
    );
    assert_eq!(r.event, AccessEvent::Miss);

    let r = llc.access(Request::read(line, domain));
    println!(
        "first reuse   -> {:?}, tag state {:?} (promoted; data now cached)",
        r.event,
        llc.tag_state(line, domain).unwrap()
    );
    assert_eq!(r.event, AccessEvent::TagHitPromoted);
    assert_eq!(llc.tag_state(line, domain), Some(TagState::Priority1Clean));

    let r = llc.access(Request::read(line, domain));
    println!(
        "steady state  -> {:?} (served from the data store)",
        r.event
    );
    assert!(r.is_data_hit());

    // A streaming scan cannot occupy the data store at all.
    for a in 0..100_000u64 {
        llc.access(Request::read(0x100_0000 + a, domain));
    }
    println!(
        "\nafter a 100K-line streaming scan: {} priority-1 entries added by the \
         stream, {} tag-only entries live (reuse ways), victim line still {}",
        llc.p1_count() - 1,
        llc.p0_count(),
        if llc.probe(line, domain) {
            "cached"
        } else {
            "evicted"
        },
    );
    println!(
        "set-associative evictions during all of this: {}",
        llc.stats().saes
    );

    println!("\n== Why this matters for storage (paper Table VIII) ==");
    let (base, mirage, maya) = table_viii_reports();
    for r in [&base, &mirage, &maya] {
        println!(
            "{:<10} tag {:>5.0} KB + data {:>6.0} KB = {:>6.0} KB ({:+.1}% vs baseline)",
            r.design,
            r.tag_store_kb(),
            r.data_store_kb(),
            r.total_kb(),
            r.overhead_vs(&base) * 100.0
        );
    }
}
