//! Attack lab: mount the three attack classes of the paper's threat model
//! against the baseline and Maya, side by side.
//!
//! ```text
//! cargo run --release --example attack_lab
//! ```

use maya_repro::attacks::eviction::{build_eviction_set, targeted_eviction};
use maya_repro::attacks::flush::flush_reload_leaks;
use maya_repro::attacks::occupancy::{encryptions_to_distinguish, OccupancyAttack};
use maya_repro::attacks::victims::ModExpVictim;
use maya_repro::maya_core::{
    CacheModel, MayaCache, MayaConfig, Policy, SetAssocCache, SetAssocConfig,
};

fn baseline() -> SetAssocCache {
    SetAssocCache::new(SetAssocConfig::new(256, 16, Policy::Lru))
}

fn maya() -> MayaCache {
    MayaCache::new(MayaConfig::with_sets(256, 3))
}

fn main() {
    println!("== 1. Eviction attack (Prime+Probe's primitive) ==");
    let mut b = baseline();
    let r = targeted_eviction(&mut b, 256, 1_000_000);
    println!(
        "baseline: victim evicted after {:>6} congruent fills",
        r.fills_until_eviction
    );
    let set = build_eviction_set(&mut b, 0x12345, 16_384, 7);
    println!(
        "baseline: group testing found a minimal eviction set of {} lines",
        set.as_ref().map(Vec::len).unwrap_or(0)
    );
    let mut m = maya();
    let r = targeted_eviction(&mut m, 256, 1_000_000);
    println!(
        "maya:     victim evicted only after {:>6} fills (global random; cache holds {}), SAEs: {}",
        r.fills_until_eviction,
        m.capacity_lines(),
        r.saes
    );
    println!(
        "maya:     eviction-set construction: {:?}",
        build_eviction_set(&mut m, 0x12345, 16_384, 7).map(|s| s.len())
    );

    println!("\n== 2. Flush+Reload (shared-memory attack) ==");
    println!("baseline leaks: {}", flush_reload_leaks(&mut baseline()));
    println!(
        "maya leaks:     {}  (SDID duplication)",
        flush_reload_leaks(&mut maya())
    );

    println!("\n== 3. Occupancy attack (not mitigated by design — but not worsened) ==");
    for (name, mut cache) in [
        ("baseline", Box::new(baseline()) as Box<dyn CacheModel>),
        ("maya", Box::new(maya())),
    ] {
        // Prime the whole cache: every victim insertion must displace
        // attacker data, or the signal decays once the victim's footprint
        // becomes resident.
        let lines = cache.capacity_lines() as u64;
        let mut attack = OccupancyAttack::new(cache.as_mut(), lines);
        let mut light = ModExpVictim::new(0x0000_00ff_00ff_0000, 1 << 30);
        let mut heavy = ModExpVictim::new(0xffff_0fff_ffff_ff0f, 2 << 30);
        let r = encryptions_to_distinguish(&mut attack, &mut light, &mut heavy, 4.0, 50_000);
        println!(
            "{name:<9} distinguished the two exponents after {:>5} operations \
             (signals {:.1} vs {:.1} lines)",
            r.encryptions, r.mean_a, r.mean_b
        );
    }
}
